"""Recursive-descent parser core shared by the three mini-language parsers.

Expression parsing is precedence-climbing over the shared operator table;
statement parsing covers the common structured subset (declarations,
assignment with ``+=``-style sugar and ``++``/``--``, if/else, while, for,
break/continue, return, calls).  Language-specific syntax — type spellings,
array syntax, builtin namespaces (``std::``, ``Math.``, ``System.out``) —
is supplied by subclass hooks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.lexer import Token


class ParseError(SyntaxError):
    """Raised when a token stream does not match the grammar."""


# precedence levels, lowest binds loosest
BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

AUG_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class ParserBase:
    """Token-stream cursor with the shared grammar productions."""

    language = "?"

    def __init__(self, tokens: List[Token]):  # noqa: D107
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- cursor
    def peek(self, offset: int = 0) -> Token:
        """Look ahead without consuming."""
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        """Consume and return the current token."""
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, value: str, kind: Optional[str] = None) -> bool:
        """True if the current token matches ``value`` (and ``kind``)."""
        tok = self.peek()
        if kind is not None and tok.kind != kind:
            return False
        return tok.value == value

    def accept(self, value: str) -> bool:
        """Consume the current token if it matches ``value``."""
        if self.peek().value == value and self.peek().kind != "eof":
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        """Consume a token equal to ``value`` or raise :class:`ParseError`."""
        tok = self.peek()
        if tok.value != value or tok.kind == "eof":
            raise ParseError(
                f"[{self.language}] line {tok.line}: expected {value!r}, got {tok.value!r}"
            )
        return self.advance()

    def expect_kind(self, kind: str) -> Token:
        """Consume a token of ``kind`` or raise."""
        tok = self.peek()
        if tok.kind != kind:
            raise ParseError(
                f"[{self.language}] line {tok.line}: expected {kind}, got {tok.kind} {tok.value!r}"
            )
        return self.advance()

    # ----------------------------------------------------- subclass hooks
    def parse_type(self) -> object:
        """Parse a type spelling; subclasses override."""
        raise NotImplementedError

    def parse_primary_hook(self) -> Optional[ast.Expr]:
        """Try language-specific primaries (``new int[n]``, ``std::``...)."""
        return None

    def parse_postfix_hook(self, expr: ast.Expr) -> Optional[ast.Expr]:
        """Try language-specific postfix forms (``a.length``)."""
        return None

    def canonical_call(self, name: str, args: List[ast.Expr]) -> ast.Expr:
        """Map a raw call to a canonical builtin or user call."""
        return ast.Call(name, args)

    def parse_print_hook(self) -> Optional[ast.Stmt]:
        """Try the language's output statement; return None if absent."""
        return None

    # -------------------------------------------------------- expressions
    def parse_expr(self, min_prec: int = 1) -> ast.Expr:
        """Precedence-climbing binary expression parser."""
        left = self.parse_unary()
        while True:
            tok = self.peek()
            prec = BINARY_PRECEDENCE.get(tok.value) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self.parse_expr(prec + 1)
            left = ast.BinOp(tok.value, left, right)

    def parse_unary(self) -> ast.Expr:
        """Unary minus / logical not / parenthesized / primary."""
        tok = self.peek()
        if tok.kind == "op" and tok.value == "-":
            self.advance()
            return ast.UnaryOp("-", self.parse_unary())
        if tok.kind == "op" and tok.value == "!":
            self.advance()
            return ast.UnaryOp("!", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        """Primary followed by subscripts / calls / language hooks."""
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                idx = self.parse_expr()
                self.expect("]")
                expr = ast.Index(expr, idx)
                continue
            hooked = self.parse_postfix_hook(expr)
            if hooked is not None:
                expr = hooked
                continue
            return expr

    def parse_call_args(self) -> List[ast.Expr]:
        """Parse ``( expr, ... )`` after a callee name."""
        self.expect("(")
        args: List[ast.Expr] = []
        if not self.check(")"):
            args.append(self.parse_expr())
            while self.accept(","):
                args.append(self.parse_expr())
        self.expect(")")
        return args

    def parse_primary(self) -> ast.Expr:
        """Literals, identifiers, calls, parens, plus the language hook."""
        hooked = self.parse_primary_hook()
        if hooked is not None:
            return hooked
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            text = tok.value.rstrip("lL")
            return ast.IntLit(int(text, 0))
        if tok.kind == "kw" and tok.value in ("true", "false"):
            self.advance()
            return ast.BoolLit(tok.value == "true")
        if tok.kind == "op" and tok.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.kind == "id":
            self.advance()
            if self.check("("):
                args = self.parse_call_args()
                return self.canonical_call(tok.value, args)
            return ast.Var(tok.value)
        raise ParseError(
            f"[{self.language}] line {tok.line}: unexpected token {tok.value!r}"
        )

    # --------------------------------------------------------- statements
    def parse_block(self) -> ast.Block:
        """Parse ``{ stmt* }``."""
        self.expect("{")
        stmts: List[ast.Stmt] = []
        while not self.check("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return ast.Block(stmts)

    def parse_block_or_single(self) -> ast.Block:
        """A braced block, or a single statement wrapped in a block."""
        if self.check("{"):
            return self.parse_block()
        return ast.Block([self.parse_stmt()])

    def looks_like_decl(self) -> bool:
        """True if the current tokens start a variable declaration."""
        raise NotImplementedError

    def parse_decl(self) -> ast.Stmt:
        """Parse a variable declaration; subclasses override."""
        raise NotImplementedError

    def parse_stmt(self) -> ast.Stmt:
        """Parse a single statement."""
        tok = self.peek()
        if tok.value == "{":
            return self.parse_block()
        if tok.value == "if":
            return self.parse_if()
        if tok.value == "while":
            return self.parse_while()
        if tok.value == "for":
            return self.parse_for()
        if tok.value == "return":
            self.advance()
            value = None if self.check(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(value)
        if tok.value == "break":
            self.advance()
            self.expect(";")
            return ast.Break()
        if tok.value == "continue":
            self.advance()
            self.expect(";")
            return ast.Continue()
        printed = self.parse_print_hook()
        if printed is not None:
            return printed
        if self.looks_like_decl():
            decl = self.parse_decl()
            self.expect(";")
            return decl
        stmt = self.parse_simple_stmt()
        self.expect(";")
        return stmt

    def parse_simple_stmt(self) -> ast.Stmt:
        """Assignment (incl. ``+=``, ``++``) or expression statement."""
        expr = self.parse_postfix()
        tok = self.peek()
        if tok.kind == "op" and tok.value == "=":
            self.advance()
            value = self.parse_expr()
            return ast.Assign(expr, value)
        if tok.kind == "op" and tok.value in AUG_ASSIGN:
            self.advance()
            value = self.parse_expr()
            return ast.Assign(expr, ast.BinOp(AUG_ASSIGN[tok.value], expr, value))
        if tok.kind == "op" and tok.value in ("++", "--"):
            self.advance()
            op = "+" if tok.value == "++" else "-"
            return ast.Assign(expr, ast.BinOp(op, expr, ast.IntLit(1)))
        # maybe the expression continues with binary operators (rare for a
        # statement, but allow e.g. bare call chains)
        if tok.kind == "op" and tok.value in BINARY_PRECEDENCE:
            full = self.parse_expr_continue(expr)
            return ast.ExprStmt(full)
        return ast.ExprStmt(expr)

    def parse_expr_continue(self, left: ast.Expr) -> ast.Expr:
        """Continue a binary expression whose left side is already parsed."""
        while True:
            tok = self.peek()
            prec = BINARY_PRECEDENCE.get(tok.value) if tok.kind == "op" else None
            if prec is None:
                return left
            self.advance()
            right = self.parse_expr(prec + 1)
            left = ast.BinOp(tok.value, left, right)

    def parse_if(self) -> ast.If:
        """``if (cond) block [else block]``."""
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block_or_single()
        otherwise = None
        if self.accept("else"):
            if self.check("if"):
                otherwise = ast.Block([self.parse_if()])
            else:
                otherwise = self.parse_block_or_single()
        return ast.If(cond, then, otherwise)

    def parse_while(self) -> ast.While:
        """``while (cond) block``."""
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(cond, self.parse_block_or_single())

    def parse_for(self) -> ast.For:
        """``for (init; cond; step) block``."""
        self.expect("for")
        self.expect("(")
        init: Optional[ast.Stmt] = None
        if not self.check(";"):
            init = self.parse_decl() if self.looks_like_decl() else self.parse_simple_stmt()
        self.expect(";")
        cond = None if self.check(";") else self.parse_expr()
        self.expect(";")
        step: Optional[ast.Stmt] = None
        if not self.check(")"):
            step = self.parse_simple_stmt()
        self.expect(")")
        return ast.For(init, cond, step, self.parse_block_or_single())
