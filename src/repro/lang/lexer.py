"""Shared lexer for the three mini-languages.

One tokenizer serves MiniC, MiniCpp and MiniJava: their lexical grammars
differ only in keyword sets, which the parsers handle.  Preprocessor lines
(``#include``) and ``using namespace`` declarations are consumed here as
trivia so parsers see a uniform token stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "int",
    "long",
    "bool",
    "boolean",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "true",
    "false",
    "new",
    "class",
    "public",
    "static",
    "struct",
}

TWO_CHAR_OPS = {"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=", "-=", "*=", "/=", "%=", "::"}
ONE_CHAR_OPS = set("+-*/%<>=!&|^~(){}[];,.?:")


@dataclass
class Token:
    """A lexical token: ``kind`` is one of id/num/str/kw/op/eof."""

    kind: str
    value: str
    line: int


class LexError(ValueError):
    """Raised on an unrecognized character."""


def tokenize(source: str) -> List[Token]:
    """Tokenize source text into a list ending with an ``eof`` token."""
    tokens: List[Token] = []
    i, n, line = 0, len(source), 1
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":  # preprocessor line — consume to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {line}")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError(f"unterminated string at line {line}")
            tokens.append(Token("str", source[i + 1 : j], line))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isdigit() or source[j] in "xXabcdefABCDEF"):
                j += 1
            # trailing long suffix
            if j < n and source[j] in "lL":
                j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        if source[i : i + 2] in TWO_CHAR_OPS:
            tokens.append(Token("op", source[i : i + 2], line))
            i += 2
            continue
        if ch in ONE_CHAR_OPS:
            tokens.append(Token("op", ch, line))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at line {line}")
    tokens.append(Token("eof", "", line))
    return tokens


def strip_using_namespace(tokens: List[Token]) -> List[Token]:
    """Drop ``using namespace std ;`` sequences from a C++ token stream."""
    out: List[Token] = []
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "id" and t.value == "using":
            while i < len(tokens) and not (
                tokens[i].kind == "op" and tokens[i].value == ";"
            ):
                i += 1
            i += 1  # skip the semicolon
            continue
        out.append(t)
        i += 1
    return out
