"""MiniC front-end: renderer (AST → C source) and parser (C source → AST).

C has no standard-library sort/min/max for ints, so the renderer emits
``static`` helper functions (``sort_ints``, ``max_i``, ...) whenever the AST
uses those builtins — exactly the "implement it yourself" idiom the paper
observes in C solutions.  The parser reads those helpers back as ordinary
user functions, so the compiled IR contains their real bodies.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser_base import ParseError, ParserBase

_HELPER_SOURCES = {
    "max": (
        "max_i",
        "static int max_i(int a, int b) {\n"
        "    if (a > b) { return a; }\n"
        "    return b;\n"
        "}\n",
    ),
    "min": (
        "min_i",
        "static int min_i(int a, int b) {\n"
        "    if (a < b) { return a; }\n"
        "    return b;\n"
        "}\n",
    ),
    "abs": (
        "abs_i",
        "static int abs_i(int a) {\n"
        "    if (a < 0) { return -a; }\n"
        "    return a;\n"
        "}\n",
    ),
    "sort": (
        "sort_ints",
        "static void sort_ints(int* a, int n) {\n"
        "    for (int i = 0; i < n; i++) {\n"
        "        for (int j = 0; j < n - 1; j++) {\n"
        "            if (a[j] > a[j + 1]) {\n"
        "                int t = a[j];\n"
        "                a[j] = a[j + 1];\n"
        "                a[j + 1] = t;\n"
        "            }\n"
        "        }\n"
        "    }\n"
        "}\n",
    ),
}

HELPER_FUNCTION_NAMES = {
    helper_name: builtin for builtin, (helper_name, _) in _HELPER_SOURCES.items()
}


class MiniCRenderer:
    """Render a language-neutral AST as compilable MiniC source text."""

    language = "c"

    def __init__(self) -> None:  # noqa: D107
        self._used_helpers: Set[str] = set()

    # ----------------------------------------------------------- types
    def type_str(self, t) -> str:
        """C spelling of a type (``bool`` degrades to ``int``)."""
        if isinstance(t, ast.ArrayType):
            return "int*"
        mapping = {"int": "int", "long": "long", "bool": "int", "void": "void"}
        return mapping[t.name]

    # ------------------------------------------------------ expressions
    def expr(self, e: ast.Expr) -> str:
        """Render an expression."""
        if isinstance(e, ast.IntLit):
            return str(e.value)
        if isinstance(e, ast.BoolLit):
            return "1" if e.value else "0"
        if isinstance(e, ast.Var):
            return e.name
        if isinstance(e, ast.BinOp):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, ast.UnaryOp):
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, ast.Index):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, ast.Call):
            if e.name in _HELPER_SOURCES:
                self._used_helpers.add(e.name)
                helper = _HELPER_SOURCES[e.name][0]
                return f"{helper}({', '.join(self.expr(a) for a in e.args)})"
            if e.name == "len":
                raise ValueError("MiniC has no len(); generator must pass lengths")
            return f"{e.name}({', '.join(self.expr(a) for a in e.args)})"
        if isinstance(e, ast.ArrayLit):
            return "{" + ", ".join(self.expr(x) for x in e.elements) + "}"
        raise TypeError(f"cannot render {type(e).__name__} in MiniC")

    # ------------------------------------------------------- statements
    def stmt(self, s: ast.Stmt, indent: int) -> List[str]:
        """Render a statement as source lines."""
        pad = "    " * indent
        if isinstance(s, ast.VarDecl):
            return [pad + self._decl_str(s) + ";"]
        if isinstance(s, ast.Assign):
            return [pad + f"{self.expr(s.target)} = {self.expr(s.value)};"]
        if isinstance(s, ast.If):
            lines = [pad + f"if ({self.expr(s.cond)}) {{"]
            lines += self.block_lines(s.then, indent + 1)
            if s.otherwise is not None:
                lines.append(pad + "} else {")
                lines += self.block_lines(s.otherwise, indent + 1)
            lines.append(pad + "}")
            return lines
        if isinstance(s, ast.While):
            lines = [pad + f"while ({self.expr(s.cond)}) {{"]
            lines += self.block_lines(s.body, indent + 1)
            lines.append(pad + "}")
            return lines
        if isinstance(s, ast.For):
            init = self._inline_stmt(s.init)
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self._inline_stmt(s.step)
            lines = [pad + f"for ({init}; {cond}; {step}) {{"]
            lines += self.block_lines(s.body, indent + 1)
            lines.append(pad + "}")
            return lines
        if isinstance(s, ast.Return):
            if s.value is None:
                return [pad + "return;"]
            return [pad + f"return {self.expr(s.value)};"]
        if isinstance(s, ast.Break):
            return [pad + "break;"]
        if isinstance(s, ast.Continue):
            return [pad + "continue;"]
        if isinstance(s, ast.Print):
            return [pad + f'printf("%d\\n", {self.expr(s.value)});']
        if isinstance(s, ast.ExprStmt):
            return [pad + self.expr(s.expr) + ";"]
        if isinstance(s, ast.Block):
            return [pad + "{"] + self.block_lines(s, indent + 1) + [pad + "}"]
        raise TypeError(f"cannot render {type(s).__name__} in MiniC")

    def _inline_stmt(self, s: Optional[ast.Stmt]) -> str:
        if s is None:
            return ""
        if isinstance(s, ast.VarDecl):
            return self._decl_str(s)
        if isinstance(s, ast.Assign):
            return f"{self.expr(s.target)} = {self.expr(s.value)}"
        if isinstance(s, ast.ExprStmt):
            return self.expr(s.expr)
        raise TypeError(f"cannot inline {type(s).__name__}")

    def _decl_str(self, s: ast.VarDecl) -> str:
        if isinstance(s.type, ast.ArrayType):
            if isinstance(s.init, ast.NewArray):
                return f"int {s.name}[{self.expr(s.init.size)}]"
            if isinstance(s.init, ast.ArrayLit):
                return f"int {s.name}[] = {self.expr(s.init)}"
            if s.init is not None:  # aliasing another array
                return f"int* {s.name} = {self.expr(s.init)}"
            raise ValueError("array declaration needs an initializer")
        base = self.type_str(s.type)
        if s.init is None:
            return f"{base} {s.name}"
        return f"{base} {s.name} = {self.expr(s.init)}"

    def block_lines(self, block: ast.Block, indent: int) -> List[str]:
        """Render a block's statements."""
        lines: List[str] = []
        for s in block.statements:
            lines += self.stmt(s, indent)
        return lines

    # --------------------------------------------------------- program
    def render(self, program: ast.Program) -> str:
        """Render the full translation unit, including any needed helpers."""
        self._used_helpers = set()
        func_chunks: List[str] = []
        for f in program.functions:
            params = ", ".join(
                (
                    f"int* {p.name}"
                    if isinstance(p.type, ast.ArrayType)
                    else f"{self.type_str(p.type)} {p.name}"
                )
                for p in f.params
            )
            header = f"{self.type_str(f.return_type)} {f.name}({params}) {{"
            body = self.block_lines(f.body, 1)
            func_chunks.append("\n".join([header] + body + ["}"]))
        helper_text = "".join(
            _HELPER_SOURCES[h][1] for h in sorted(self._used_helpers)
        )
        return "#include <stdio.h>\n\n" + helper_text + "\n" + "\n\n".join(func_chunks) + "\n"


class MiniCParser(ParserBase):
    """Parser for MiniC (also the base for the MiniCpp parser)."""

    language = "c"
    TYPE_KEYWORDS = ("int", "long", "bool", "void")

    def parse_type(self):
        """Parse ``int`` / ``long`` / ``void`` with optional ``*``."""
        tok = self.advance()
        if tok.value not in self.TYPE_KEYWORDS:
            raise ParseError(f"[{self.language}] line {tok.line}: expected type, got {tok.value!r}")
        scalar = ast.ScalarType("int" if tok.value == "bool" else tok.value)
        if self.accept("*"):
            return ast.ArrayType(scalar)
        return scalar

    def looks_like_decl(self) -> bool:
        """Declarations start with a type keyword."""
        return self.peek().kind == "kw" and self.peek().value in ("int", "long", "bool")

    def parse_decl(self) -> ast.Stmt:
        """``int x = e`` | ``int a[e]`` | ``int a[] = {..}`` | ``int* p = e``."""
        t = self.parse_type()
        name = self.expect_kind("id").value
        if isinstance(t, ast.ScalarType) and self.accept("["):
            if self.accept("]"):
                self.expect("=")
                lit = self._parse_brace_list()
                return ast.VarDecl(name, ast.ArrayType(t), lit)
            size = self.parse_expr()
            self.expect("]")
            return ast.VarDecl(name, ast.ArrayType(t), ast.NewArray(t, size))
        init = None
        if self.accept("="):
            init = self.parse_expr()
        return ast.VarDecl(name, t, init)

    def _parse_brace_list(self) -> ast.ArrayLit:
        self.expect("{")
        elems: List[ast.Expr] = []
        if not self.check("}"):
            elems.append(self.parse_expr())
            while self.accept(","):
                elems.append(self.parse_expr())
        self.expect("}")
        return ast.ArrayLit(elems)

    def parse_print_hook(self) -> Optional[ast.Stmt]:
        """``printf("%d\\n", expr);`` → Print."""
        if self.peek().kind == "id" and self.peek().value == "printf":
            self.advance()
            self.expect("(")
            self.expect_kind("str")
            self.expect(",")
            value = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.Print(value)
        return None

    # ----------------------------------------------------------- program
    def parse_function(self) -> ast.Function:
        """``[static] type name(params) { body }``."""
        self.accept("static")
        ret = self.parse_type()
        name = self.expect_kind("id").value
        self.expect("(")
        params: List[ast.Param] = []
        if not self.check(")"):
            params.append(self._parse_param())
            while self.accept(","):
                params.append(self._parse_param())
        self.expect(")")
        body = self.parse_block()
        return ast.Function(name, params, ret, body)

    def _parse_param(self) -> ast.Param:
        t = self.parse_type()
        name = self.expect_kind("id").value
        if self.accept("["):  # `int a[]` spelling
            self.expect("]")
            if isinstance(t, ast.ScalarType):
                t = ast.ArrayType(t)
        return ast.Param(name, t)

    def parse_program(self) -> ast.Program:
        """Parse a full translation unit."""
        functions: List[ast.Function] = []
        while self.peek().kind != "eof":
            functions.append(self.parse_function())
        # Helper bodies keep the user's name when re-parsed; the Program is
        # the real compilation unit.
        return ast.Program(functions, language=self.language)


def parse_minic(source: str) -> ast.Program:
    """Parse MiniC source text into a :class:`~repro.lang.ast.Program`."""
    return MiniCParser(tokenize(source)).parse_program()
