"""Task template library — the CLCDSA / POJ-104 corpus substitute.

Each :class:`Task` is a parameterized competitive-programming problem that
can be instantiated into many *solution variants* (different variable names,
loop styles, accumulation directions, manual-vs-library idioms, embedded
datasets) in any of the three mini-languages.  Solutions to the same task
are semantically equivalent *per variant seed* but structurally diverse —
the positive-pair signal GraphBinMatch must learn — while solutions to
different tasks compute different things — the negative-pair signal.

Randomness is drawn through named, order-independent streams so the same
``(task, variant)`` produces the same algorithmic choices in every language;
only language-conditioned idioms (``len(a)`` vs an explicit ``n``,
``std::sort`` vs a hand-rolled sort) differ, mirroring how real multilingual
solutions diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.lang import ast
from repro.lang.dsl import (
    add,
    array_lit,
    assign,
    block,
    call,
    decl,
    decl_array,
    div,
    eq,
    for_down,
    forto,
    func,
    ge,
    gt,
    idx,
    if_,
    land,
    le,
    lt,
    mod,
    mul,
    ne,
    neg,
    new_array,
    param,
    pr,
    ret,
    sub,
    v,
    while_,
    expr_stmt,
)
from repro.utils.rng import derive_rng

ARRAY_NAMES = ["a", "arr", "data", "nums", "vals", "xs"]
LOOP_NAMES = ["i", "j", "k", "idx", "p", "t"]
ACC_NAMES = ["s", "total", "acc", "res", "ans", "best"]
AUX_NAMES = ["tmp", "cur", "x", "w", "q", "h"]
LEN_NAMES = ["n", "m", "size", "cnt"]


class Spec:
    """Per-(task, variant, language) deterministic choice/data source.

    With ``independent=False`` (default) the random streams exclude the
    language, so the three renderings of a (task, variant) make identical
    choices and are *semantically equivalent* — the property the language
    substrate tests verify.  With ``independent=True`` the language enters
    the derivation: every language draws its own names, styles and data,
    modelling CLCDSA's independently-written solutions (two programmers
    solving the same problem share the algorithm, not the literals).
    """

    def __init__(
        self,
        seed: int,
        task: str,
        variant: int,
        lang: str,
        independent: bool = False,
    ):  # noqa: D107
        self.seed = seed
        self.task = task
        self.variant = variant
        self.lang = lang
        self.independent = independent
        self._names: Dict[str, str] = {}

    def _rng(self, key: str):
        if self.independent:
            return derive_rng(self.seed, self.task, self.variant, self.lang, key)
        return derive_rng(self.seed, self.task, self.variant, key)

    def choice(self, key: str, options: Sequence):
        """Draw one of ``options``; stable per (task, variant, key)."""
        r = self._rng("choice:" + key)
        return options[int(r.integers(0, len(options)))]

    def flag(self, key: str) -> bool:
        """Draw a boolean."""
        return bool(self.choice(key, [True, False]))

    def ints(self, key: str, n: int, lo: int, hi: int) -> List[int]:
        """Draw ``n`` integers in ``[lo, hi)``."""
        return self._rng("data:" + key).integers(lo, hi, size=n).tolist()

    def int(self, key: str, lo: int, hi: int) -> int:
        """Draw one integer in ``[lo, hi)``."""
        return int(self._rng("data:" + key).integers(lo, hi))

    def name(self, role: str, pool: Sequence[str]) -> str:
        """Pick a fresh identifier for ``role`` from ``pool`` (no collisions)."""
        if role in self._names:
            return self._names[role]
        taken = set(self._names.values())
        r = self._rng("name:" + role)
        order = list(r.permutation(len(pool)))
        for k in order:
            cand = pool[k]
            if cand not in taken:
                self._names[role] = cand
                return cand
        cand = pool[order[0]] + str(len(self._names))
        self._names[role] = cand
        return cand

    # conventional roles
    def arr(self) -> str:
        """Array variable name."""
        return self.name("arr", ARRAY_NAMES)

    def loop(self, which: str = "i") -> str:
        """Loop variable name (roles i/j/k are distinct)."""
        return self.name("loop:" + which, LOOP_NAMES)

    def acc(self, which: str = "acc") -> str:
        """Accumulator variable name."""
        return self.name("acc:" + which, ACC_NAMES)

    def aux(self, which: str = "aux") -> str:
        """Auxiliary variable name."""
        return self.name("aux:" + which, AUX_NAMES)

    def nvar(self) -> str:
        """Length parameter name."""
        return self.name("len", LEN_NAMES)


# --------------------------------------------------------------- helpers
def count_loop(
    sp: Spec,
    key: str,
    var: str,
    start,
    stop,
    body_stmts: List[ast.Stmt],
    order_free: bool = False,
):
    """A counting loop over [start, stop) in one of several surface forms.

    Style (``for`` vs ``while``) and — for order-insensitive bodies
    (``order_free=True``, e.g. commutative accumulations) — direction are
    independent variant choices.  A descending loop visits the same index
    set, but its comparison predicate and branch shape differ — the kind
    of structural divergence independently-written solutions show, which
    keeps feature-counting baselines (B2SFinder's cmp/branch features)
    from free-riding on template rigidity.
    """
    style = sp.choice("loopstyle:" + key, ["for", "while"])
    descending = order_free and sp.flag("loopdir:" + key)
    if descending:
        # i = stop-1; while (i >= start) { body; i-- }
        return [
            decl(var, sub(stop, 1)),
            while_(ge(v(var), start), block(*body_stmts, assign(var, sub(v(var), 1)))),
        ]
    if style == "for":
        return [forto(var, start, stop, block(*body_stmts))]
    return [
        decl(var, start),
        while_(lt(v(var), stop), block(*body_stmts, assign(var, add(v(var), 1)))),
    ]


def solver_array_signature(sp: Spec, arr: str):
    """Return (params, length_expr, call_args_builder) for an array solver.

    Java variants may drop the explicit length parameter and use
    ``a.length`` — the canonical cross-language signature divergence.
    """
    use_len = sp.lang == "java" and sp.flag("use_len")
    if use_len:
        params = [param(arr, array=True)]
        length = call("len", v(arr))

        def args(arr_var, n_value):
            return [v(arr_var)]

    else:
        n = sp.nvar()
        params = [param(arr, array=True), param(n)]
        length = v(n)

        def args(arr_var, n_value):
            return [v(arr_var), ast.IntLit(n_value)]

    return params, length, args


def minmax_expr(sp: Spec, key: str, op: str, a, b):
    """``max(a, b)`` either via the builtin or an explicit compare (variant)."""
    use_builtin = sp.flag("builtin:" + key)
    if use_builtin:
        return ("call", call(op, a, b))
    return ("if", (op, a, b))


@dataclass
class Task:
    """A named problem template with a solution-variant builder."""

    name: str
    description: str
    build: Callable[[Spec], ast.Program]


TASK_REGISTRY: Dict[str, Task] = {}


def _register(name: str, description: str):
    def deco(fn):
        TASK_REGISTRY[name] = Task(name, description, fn)
        return fn

    return deco


def get_task(name: str) -> Task:
    """Look up a registered task template."""
    return TASK_REGISTRY[name]


def _main_with_array(sp: Spec, solver: ast.Function, data: List[int], args_builder, extra_args=()):
    """Standard main: embed a literal dataset, call solver, print result."""
    arr_main = "input" if sp.lang == "java" else "buf"
    stmts: List[ast.Stmt] = [decl_array(arr_main, array_lit(data))]
    call_args = args_builder(arr_main, len(data))
    for extra in extra_args:
        call_args.append(ast.IntLit(extra))
    stmts.append(pr(ast.Call(solver.name, call_args)))
    stmts.append(ret(0))
    return func("main", [], "int", block(*stmts))


def _program(sp: Spec, functions: List[ast.Function]) -> ast.Program:
    return ast.Program(functions, language=sp.lang)


# ------------------------------------------------------------- the tasks
@_register("sum_array", "Sum the elements of an array")
def _sum_array(sp: Spec) -> ast.Program:
    arr, i, s = sp.arr(), sp.loop(), sp.acc()
    params, length, args_b = solver_array_signature(sp, arr)
    body = [decl(s, 0)]
    body += count_loop(sp, "main", i, 0, length, [assign(s, add(v(s), idx(arr, v(i))))], order_free=True)
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["sumArray", "total", "computeSum"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 14), -20, 40)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("max_element", "Find the maximum element of an array")
def _max_element(sp: Spec) -> ast.Program:
    arr, i, best = sp.arr(), sp.loop(), sp.acc()
    params, length, args_b = solver_array_signature(sp, arr)
    kind, payload = minmax_expr(sp, "mx", "max", idx(arr, v(i)), v(best))
    if kind == "call":
        update: List[ast.Stmt] = [assign(best, payload)]
    else:
        update = [if_(gt(idx(arr, v(i)), v(best)), block(assign(best, idx(arr, v(i)))))]
    body = [decl(best, idx(arr, 0))]
    body += count_loop(sp, "main", i, 1, length, update)
    body.append(ret(v(best)))
    solver = func(sp.choice("fname", ["maxOf", "largest", "findMax"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 14), -50, 99)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("min_element", "Find the minimum element of an array")
def _min_element(sp: Spec) -> ast.Program:
    arr, i, best = sp.arr(), sp.loop(), sp.acc()
    params, length, args_b = solver_array_signature(sp, arr)
    kind, payload = minmax_expr(sp, "mn", "min", idx(arr, v(i)), v(best))
    if kind == "call":
        update: List[ast.Stmt] = [assign(best, payload)]
    else:
        update = [if_(lt(idx(arr, v(i)), v(best)), block(assign(best, idx(arr, v(i)))))]
    body = [decl(best, idx(arr, 0))]
    body += count_loop(sp, "main", i, 1, length, update)
    body.append(ret(v(best)))
    solver = func(sp.choice("fname", ["minOf", "smallest", "findMin"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 14), -99, 50)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("count_even", "Count even elements of an array")
def _count_even(sp: Spec) -> ast.Program:
    arr, i, c = sp.arr(), sp.loop(), sp.acc()
    params, length, args_b = solver_array_signature(sp, arr)
    body = [decl(c, 0)]
    body += count_loop(
        sp,
        "main",
        i,
        0,
        length,
        [if_(eq(mod(idx(arr, v(i)), 2), 0), block(assign(c, add(v(c), 1))))],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["countEven", "evens", "numEven"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 8, 16), 0, 60)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("linear_search", "Index of the first occurrence of a key")
def _linear_search(sp: Spec) -> ast.Program:
    arr, i, key = sp.arr(), sp.loop(), sp.aux("key")
    params, length, args_b = solver_array_signature(sp, arr)
    params = params + [param(key)]
    early = sp.flag("early_return")
    if early:
        body: List[ast.Stmt] = []
        body += count_loop(
            sp, "main", i, 0, length,
            [if_(eq(idx(arr, v(i)), v(key)), block(ret(v(i))))],
        )
        body.append(ret(neg(1)))
    else:
        found = sp.acc("found")
        body = [decl(found, neg(1))]
        body += count_loop(
            sp, "main", i, 0, length,
            [if_(land(eq(idx(arr, v(i)), v(key)), eq(v(found), neg(1))),
                 block(assign(found, v(i))))],
        )
        body.append(ret(v(found)))
    solver = func(sp.choice("fname", ["find", "indexOf", "search"]), params, "int", block(*body))
    data = sp.ints("arr", 10, 0, 30)
    target = data[sp.int("pos", 0, 10)]
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b, extra_args=(target,))])


@_register("reverse_sum", "Reverse an array in place, then sum index*value")
def _reverse_sum(sp: Spec) -> ast.Program:
    arr, i, j, t = sp.arr(), sp.loop("i"), sp.loop("j"), sp.aux("t")
    s, k = sp.acc(), sp.loop("k")
    params, length, args_b = solver_array_signature(sp, arr)
    swap_body = [
        decl(t, idx(arr, v(i))),
        assign(idx(arr, v(i)), idx(arr, v(j))),
        assign(idx(arr, v(j)), v(t)),
        assign(i, add(v(i), 1)),
        assign(j, sub(v(j), 1)),
    ]
    body: List[ast.Stmt] = [
        decl(i, 0),
        decl(j, sub(length, 1)),
        while_(lt(v(i), v(j)), block(*swap_body)),
        decl(s, 0),
    ]
    body += count_loop(sp, "sum", k, 0, length, [assign(s, add(v(s), mul(v(k), idx(arr, v(k)))))], order_free=True)
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["revWeight", "flipScore", "reverseSum"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 12), 1, 25)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("fibonacci", "n-th Fibonacci number, iterative")
def _fibonacci(sp: Spec) -> ast.Program:
    n, i = sp.nvar(), sp.loop()
    a, b, t = sp.acc("a"), sp.acc("b"), sp.aux("t")
    body: List[ast.Stmt] = [decl(a, 0), decl(b, 1)]
    body += count_loop(
        sp, "main", i, 0, v(n),
        [decl(t, add(v(a), v(b))), assign(a, v(b)), assign(b, v(t))],
    )
    body.append(ret(v(a)))
    solver = func(sp.choice("fname", ["fib", "fibonacci", "fibo"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 5, 25)
    main = func(
        "main", [], "int",
        block(pr(call(solver.name, arg)), ret(0)),
    )
    return _program(sp, [solver, main])


@_register("factorial", "n! iteratively")
def _factorial(sp: Spec) -> ast.Program:
    n, i, f = sp.nvar(), sp.loop(), sp.acc()
    down = sp.flag("count_down")
    if down:
        body = [decl(f, 1), for_down(i, v(n), 2, block(assign(f, mul(v(f), v(i)))))]
    else:
        body = [decl(f, 1)]
        body += count_loop(sp, "main", i, 2, add(v(n), 1), [assign(f, mul(v(f), v(i)))])
    body.append(ret(v(f)))
    solver = func(sp.choice("fname", ["fact", "factorial"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 3, 13)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("gcd", "Greatest common divisor (Euclid)")
def _gcd(sp: Spec) -> ast.Program:
    x, y, t = sp.aux("x"), sp.aux("y"), sp.aux("t")
    style = sp.choice("style", ["mod", "sub"])
    if style == "mod":
        loop_body = block(decl(t, mod(v(x), v(y))), assign(x, v(y)), assign(y, v(t)))
        body = [while_(ne(v(y), 0), loop_body), ret(v(x))]
    else:
        body = [
            while_(
                ne(v(x), v(y)),
                block(
                    if_(gt(v(x), v(y)), block(assign(x, sub(v(x), v(y)))),
                        block(assign(y, sub(v(y), v(x))))),
                ),
            ),
            ret(v(x)),
        ]
    solver = func(sp.choice("fname", ["gcd", "hcf"]), [param(x), param(y)], "int", block(*body))
    a = sp.int("a", 20, 400)
    b = sp.int("b", 8, 300)
    main = func("main", [], "int", block(pr(call(solver.name, a, b)), ret(0)))
    return _program(sp, [solver, main])


@_register("count_primes", "Count primes in [2, n] by trial division")
def _count_primes(sp: Spec) -> ast.Program:
    n, i, j, c, flag = sp.nvar(), sp.loop("i"), sp.loop("j"), sp.acc(), sp.aux("flag")
    inner = block(
        if_(eq(mod(v(i), v(j)), 0), block(assign(flag, 0))),
    )
    body: List[ast.Stmt] = [decl(c, 0)]
    body += count_loop(
        sp, "outer", i, 2, add(v(n), 1),
        [
            decl(flag, 1),
            forto(j, 2, v(i), inner),
            if_(eq(v(flag), 1), block(assign(c, add(v(c), 1)))),
        ],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["countPrimes", "primesUpTo", "numPrimes"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 10, 60)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("sum_digits", "Sum of decimal digits")
def _sum_digits(sp: Spec) -> ast.Program:
    x, s = sp.aux("x"), sp.acc()
    body = [
        decl(s, 0),
        while_(gt(v(x), 0), block(assign(s, add(v(s), mod(v(x), 10))), assign(x, div(v(x), 10)))),
        ret(v(s)),
    ]
    solver = func(sp.choice("fname", ["digitSum", "sumDigits"]), [param(x)], "int", block(*body))
    arg = sp.int("x", 100, 99999)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("power", "Integer exponentiation")
def _power(sp: Spec) -> ast.Program:
    base, exp, r, i = sp.aux("base"), sp.aux("exp"), sp.acc(), sp.loop()
    fast = sp.flag("fast_pow")
    if fast:
        body = [
            decl(r, 1),
            while_(
                gt(v(exp), 0),
                block(
                    if_(eq(mod(v(exp), 2), 1), block(assign(r, mul(v(r), v(base))))),
                    assign(base, mul(v(base), v(base))),
                    assign(exp, div(v(exp), 2)),
                ),
            ),
            ret(v(r)),
        ]
    else:
        body = [decl(r, 1)]
        body += count_loop(sp, "main", i, 0, v(exp), [assign(r, mul(v(r), v(base)))])
        body.append(ret(v(r)))
    solver = func(sp.choice("fname", ["power", "ipow", "expo"]), [param(base), param(exp)], "int", block(*body))
    b = sp.int("b", 2, 6)
    e_arg = sp.int("e", 3, 11)
    main = func("main", [], "int", block(pr(call(solver.name, b, e_arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("sort_median", "Sort an array, return the middle element")
def _sort_median(sp: Spec) -> ast.Program:
    arr, i, j, t = sp.arr(), sp.loop("i"), sp.loop("j"), sp.aux("t")
    params, length, args_b = solver_array_signature(sp, arr)
    manual = sp.lang == "c" or sp.flag("manual_sort")
    body: List[ast.Stmt] = []
    if manual and sp.lang != "c":
        # hand-rolled bubble sort even though the library exists
        body += _bubble_sort_stmts(arr, length, i, j, t)
    elif manual:
        body += _bubble_sort_stmts(arr, length, i, j, t)
    else:
        if sp.lang == "java" and len(params) == 1:
            body.append(expr_stmt(call("sort", v(arr), call("len", v(arr)))))
        else:
            body.append(expr_stmt(call("sort", v(arr), length)))
    body.append(ret(idx(arr, div(length, 2))))
    solver = func(sp.choice("fname", ["median", "midValue", "sortedMiddle"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 7, 13), 0, 90)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


def _bubble_sort_stmts(arr, length, i, j, t):
    inner = block(
        if_(
            gt(idx(arr, v(j)), idx(arr, add(v(j), 1))),
            block(
                decl(t, idx(arr, v(j))),
                assign(idx(arr, v(j)), idx(arr, add(v(j), 1))),
                assign(idx(arr, add(v(j), 1)), v(t)),
            ),
        )
    )
    return [forto(i, 0, length, block(forto(j, 0, sub(length, 1), inner)))]


@_register("second_largest", "Second-largest element of an array")
def _second_largest(sp: Spec) -> ast.Program:
    arr, i = sp.arr(), sp.loop()
    first, second = sp.acc("first"), sp.acc("second")
    params, length, args_b = solver_array_signature(sp, arr)
    update = [
        if_(
            gt(idx(arr, v(i)), v(first)),
            block(assign(second, v(first)), assign(first, idx(arr, v(i)))),
            block(
                if_(
                    land(gt(idx(arr, v(i)), v(second)), lt(idx(arr, v(i)), v(first))),
                    block(assign(second, idx(arr, v(i)))),
                )
            ),
        )
    ]
    body = [decl(first, neg(1000000)), decl(second, neg(1000000))]
    body += count_loop(sp, "main", i, 0, length, update)
    body.append(ret(v(second)))
    solver = func(sp.choice("fname", ["secondMax", "runnerUp"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 12), 0, 99)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("dot_product", "Dot product of two arrays")
def _dot_product(sp: Spec) -> ast.Program:
    a, b2 = sp.arr(), sp.name("arr2", ["b", "ys", "other", "second"])
    i, s, n = sp.loop(), sp.acc(), sp.nvar()
    body = [decl(s, 0)]
    body += count_loop(sp, "main", i, 0, v(n), [assign(s, add(v(s), mul(idx(a, v(i)), idx(b2, v(i)))))], order_free=True)
    body.append(ret(v(s)))
    solver = func(
        sp.choice("fname", ["dot", "inner", "dotProduct"]),
        [param(a, array=True), param(b2, array=True), param(n)],
        "int",
        block(*body),
    )
    count = sp.int("n", 5, 10)
    xs = sp.ints("xs", count, -9, 12)
    ys = sp.ints("ys", count, -6, 15)
    main = func(
        "main", [], "int",
        block(
            decl_array("u", array_lit(xs)),
            decl_array("w2", array_lit(ys)),
            pr(call(solver.name, v("u"), v("w2"), count)),
            ret(0),
        ),
    )
    return _program(sp, [solver, main])


@_register("prefix_sums", "Build prefix sums, return the last")
def _prefix_sums(sp: Spec) -> ast.Program:
    arr, i, pre = sp.arr(), sp.loop(), sp.name("arr2", ["pre", "sums", "ps"])
    params, length, args_b = solver_array_signature(sp, arr)
    body: List[ast.Stmt] = [
        decl_array(pre, new_array(length)),
        assign(idx(pre, 0), idx(arr, 0)),
    ]
    body += count_loop(
        sp, "main", i, 1, length,
        [assign(idx(pre, v(i)), add(idx(pre, sub(v(i), 1)), idx(arr, v(i))))],
    )
    body.append(ret(idx(pre, sub(length, 1))))
    solver = func(sp.choice("fname", ["prefixLast", "runningTotal"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 12), 1, 30)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("count_divisors", "Number of divisors of n")
def _count_divisors(sp: Spec) -> ast.Program:
    n, i, c = sp.nvar(), sp.loop(), sp.acc()
    body = [decl(c, 0)]
    body += count_loop(
        sp, "main", i, 1, add(v(n), 1),
        [if_(eq(mod(v(n), v(i)), 0), block(assign(c, add(v(c), 1))))],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["divisors", "countDiv", "tau"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 12, 240)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("binary_search", "Binary search in a sorted array")
def _binary_search(sp: Spec) -> ast.Program:
    arr, key = sp.arr(), sp.aux("key")
    lo, hi, mid = sp.aux("lo"), sp.aux("hi"), sp.aux("mid")
    params, length, args_b = solver_array_signature(sp, arr)
    params = params + [param(key)]
    body = [
        decl(lo, 0),
        decl(hi, sub(length, 1)),
        while_(
            le(v(lo), v(hi)),
            block(
                decl(mid, div(add(v(lo), v(hi)), 2)),
                if_(
                    eq(idx(arr, v(mid)), v(key)),
                    block(ret(v(mid))),
                    block(
                        if_(
                            lt(idx(arr, v(mid)), v(key)),
                            block(assign(lo, add(v(mid), 1))),
                            block(assign(hi, sub(v(mid), 1))),
                        )
                    ),
                ),
            ),
        ),
        ret(neg(1)),
    ]
    solver = func(sp.choice("fname", ["bsearch", "binSearch", "locate"]), params, "int", block(*body))
    count = sp.int("n", 8, 14)
    data = sorted(set(sp.ints("arr", count, 0, 99)))
    target = data[sp.int("pos", 0, len(data))]
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b, extra_args=(target,))])


@_register("array_average", "Integer average of array elements")
def _array_average(sp: Spec) -> ast.Program:
    arr, i, s = sp.arr(), sp.loop(), sp.acc()
    params, length, args_b = solver_array_signature(sp, arr)
    body = [decl(s, 0)]
    body += count_loop(sp, "main", i, 0, length, [assign(s, add(v(s), idx(arr, v(i))))], order_free=True)
    body.append(ret(div(v(s), length)))
    solver = func(sp.choice("fname", ["average", "meanOf"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 5, 12), 0, 100)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("range_sum", "Sum of integers from a to b")
def _range_sum(sp: Spec) -> ast.Program:
    a, b2, s, i = sp.aux("a"), sp.aux("b"), sp.acc(), sp.loop()
    closed_form = sp.flag("closed_form")
    if closed_form:
        width = sub(v(b2), v(a))
        body = [ret(div(mul(add(v(a), v(b2)), add(width, 1)), 2))]
    else:
        body = [decl(s, 0)]
        body += count_loop(sp, "main", i, v(a), add(v(b2), 1), [assign(s, add(v(s), v(i)))], order_free=True)
        body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["rangeSum", "sumFromTo"]), [param(a), param(b2)], "int", block(*body))
    lo = sp.int("lo", 1, 40)
    hi = lo + sp.int("w", 3, 50)
    main = func("main", [], "int", block(pr(call(solver.name, lo, hi)), ret(0)))
    return _program(sp, [solver, main])


@_register("collatz_steps", "Collatz sequence length")
def _collatz(sp: Spec) -> ast.Program:
    x, c = sp.aux("x"), sp.acc()
    body = [
        decl(c, 0),
        while_(
            ne(v(x), 1),
            block(
                if_(
                    eq(mod(v(x), 2), 0),
                    block(assign(x, div(v(x), 2))),
                    block(assign(x, add(mul(3, v(x)), 1))),
                ),
                assign(c, add(v(c), 1)),
            ),
        ),
        ret(v(c)),
    ]
    solver = func(sp.choice("fname", ["collatz", "steps", "hailstone"]), [param(x)], "int", block(*body))
    arg = sp.int("x", 3, 50)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("count_occurrences", "Count occurrences of a key in an array")
def _count_occurrences(sp: Spec) -> ast.Program:
    arr, i, c, key = sp.arr(), sp.loop(), sp.acc(), sp.aux("key")
    params, length, args_b = solver_array_signature(sp, arr)
    params = params + [param(key)]
    body = [decl(c, 0)]
    body += count_loop(
        sp, "main", i, 0, length,
        [if_(eq(idx(arr, v(i)), v(key)), block(assign(c, add(v(c), 1))))],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["countOf", "occurrences", "freq"]), params, "int", block(*body))
    data = sp.ints("arr", 12, 0, 6)
    target = sp.int("key", 0, 6)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b, extra_args=(target,))])


@_register("max_subarray", "Maximum subarray sum (Kadane)")
def _max_subarray(sp: Spec) -> ast.Program:
    arr, i = sp.arr(), sp.loop()
    best, cur = sp.acc("best"), sp.acc("cur")
    params, length, args_b = solver_array_signature(sp, arr)
    use_builtin = sp.lang != "c" and sp.flag("builtin_max")
    if use_builtin:
        update = [
            assign(cur, call("max", idx(arr, v(i)), add(v(cur), idx(arr, v(i))))),
            assign(best, call("max", v(best), v(cur))),
        ]
    else:
        update = [
            assign(cur, add(v(cur), idx(arr, v(i)))),
            if_(lt(v(cur), idx(arr, v(i))), block(assign(cur, idx(arr, v(i))))),
            if_(gt(v(cur), v(best)), block(assign(best, v(cur)))),
        ]
    body = [decl(best, idx(arr, 0)), decl(cur, idx(arr, 0))]
    body += count_loop(sp, "main", i, 1, length, update)
    body.append(ret(v(best)))
    solver = func(sp.choice("fname", ["kadane", "maxSub", "bestRun"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 8, 14), -30, 30)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("is_sorted", "Check whether an array is non-decreasing")
def _is_sorted(sp: Spec) -> ast.Program:
    arr, i, ok = sp.arr(), sp.loop(), sp.acc("ok")
    params, length, args_b = solver_array_signature(sp, arr)
    body = [decl(ok, 1)]
    body += count_loop(
        sp, "main", i, 1, length,
        [if_(lt(idx(arr, v(i)), idx(arr, sub(v(i), 1))), block(assign(ok, 0)))],
    )
    body.append(ret(v(ok)))
    solver = func(sp.choice("fname", ["isSorted", "sortedCheck", "nonDecreasing"]), params, "int", block(*body))
    base = sp.ints("arr", sp.int("n", 6, 12), 0, 50)
    if sp.flag("actually_sorted"):
        base = sorted(base)
    return _program(sp, [solver, _main_with_array(sp, solver, base, args_b)])


@_register("digit_reverse", "Reverse the decimal digits of n")
def _digit_reverse(sp: Spec) -> ast.Program:
    x, r = sp.aux("x"), sp.acc()
    body = [
        decl(r, 0),
        while_(gt(v(x), 0), block(
            assign(r, add(mul(v(r), 10), mod(v(x), 10))),
            assign(x, div(v(x), 10)),
        )),
        ret(v(r)),
    ]
    solver = func(sp.choice("fname", ["revDigits", "reverseNum"]), [param(x)], "int", block(*body))
    arg = sp.int("x", 100, 99999)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("pair_sum_count", "Count index pairs whose values sum to k")
def _pair_sum_count(sp: Spec) -> ast.Program:
    arr, i, j, c, k = sp.arr(), sp.loop("i"), sp.loop("j"), sp.acc(), sp.aux("k")
    params, length, args_b = solver_array_signature(sp, arr)
    params = params + [param(k)]
    inner = block(
        if_(eq(add(idx(arr, v(i)), idx(arr, v(j))), v(k)), block(assign(c, add(v(c), 1))))
    )
    body = [
        decl(c, 0),
        forto(i, 0, length, block(forto(j, add(v(i), 1), length, inner))),
        ret(v(c)),
    ]
    solver = func(sp.choice("fname", ["pairCount", "twoSumCount"]), params, "int", block(*body))
    data = sp.ints("arr", 10, 0, 12)
    target = sp.int("k", 4, 18)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b, extra_args=(target,))])


@_register("modpow", "Modular exponentiation")
def _modpow(sp: Spec) -> ast.Program:
    base, exp, m, r = sp.aux("base"), sp.aux("exp"), sp.aux("m"), sp.acc()
    body = [
        decl(r, 1),
        assign(base, mod(v(base), v(m))),
        while_(
            gt(v(exp), 0),
            block(
                if_(eq(mod(v(exp), 2), 1), block(assign(r, mod(mul(v(r), v(base)), v(m))))),
                assign(exp, div(v(exp), 2)),
                assign(base, mod(mul(v(base), v(base)), v(m))),
            ),
        ),
        ret(v(r)),
    ]
    solver = func(
        sp.choice("fname", ["modpow", "powmod"]),
        [param(base), param(exp), param(m)],
        "int",
        block(*body),
    )
    b = sp.int("b", 2, 30)
    e2 = sp.int("e", 3, 20)
    m2 = sp.int("m", 7, 1000)
    main = func("main", [], "int", block(pr(call(solver.name, b, e2, m2)), ret(0)))
    return _program(sp, [solver, main])


@_register("lcm", "Least common multiple via GCD")
def _lcm(sp: Spec) -> ast.Program:
    x, y, t = sp.aux("x"), sp.aux("y"), sp.aux("t")
    gx, gy = sp.aux("gx"), sp.aux("gy")
    gcd_body = block(
        while_(ne(v(y), 0), block(decl(t, mod(v(x), v(y))), assign(x, v(y)), assign(y, v(t)))),
        ret(v(x)),
    )
    gcd_fn = func(sp.choice("gname", ["gcd", "hcf"]), [param(x), param(y)], "int", gcd_body)
    lcm_body = block(ret(div(mul(v(gx), v(gy)), call(gcd_fn.name, v(gx), v(gy)))))
    lcm_fn = func(sp.choice("fname", ["lcm", "lowestCommon"]), [param(gx), param(gy)], "int", lcm_body)
    a = sp.int("a", 4, 60)
    b = sp.int("b", 6, 80)
    main = func("main", [], "int", block(pr(call(lcm_fn.name, a, b)), ret(0)))
    return _program(sp, [gcd_fn, lcm_fn, main])


@_register("alternating_sum", "Sum with alternating signs")
def _alternating_sum(sp: Spec) -> ast.Program:
    arr, i, s, sign = sp.arr(), sp.loop(), sp.acc(), sp.aux("sign")
    params, length, args_b = solver_array_signature(sp, arr)
    use_sign_var = sp.flag("sign_var")
    if use_sign_var:
        body = [decl(s, 0), decl(sign, 1)]
        body += count_loop(
            sp, "main", i, 0, length,
            [assign(s, add(v(s), mul(v(sign), idx(arr, v(i))))), assign(sign, neg(v(sign)))],
        )
    else:
        body = [decl(s, 0)]
        body += count_loop(
            sp, "main", i, 0, length,
            [
                if_(
                    eq(mod(v(i), 2), 0),
                    block(assign(s, add(v(s), idx(arr, v(i))))),
                    block(assign(s, sub(v(s), idx(arr, v(i))))),
                )
            ],
        )
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["altSum", "zigzag"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 12), 0, 40)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("count_above", "Count elements above a threshold")
def _count_above(sp: Spec) -> ast.Program:
    arr, i, c, th = sp.arr(), sp.loop(), sp.acc(), sp.aux("th")
    params, length, args_b = solver_array_signature(sp, arr)
    params = params + [param(th)]
    body = [decl(c, 0)]
    body += count_loop(
        sp, "main", i, 0, length,
        [if_(gt(idx(arr, v(i)), v(th)), block(assign(c, add(v(c), 1))))],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["countAbove", "aboveThreshold"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 8, 15), 0, 100)
    threshold = sp.int("th", 20, 80)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b, extra_args=(threshold,))])


@_register("sum_of_squares", "Sum of squares of 1..n")
def _sum_of_squares(sp: Spec) -> ast.Program:
    n, i, s = sp.nvar(), sp.loop(), sp.acc()
    body = [decl(s, 0)]
    body += count_loop(sp, "main", i, 1, add(v(n), 1), [assign(s, add(v(s), mul(v(i), v(i))))], order_free=True)
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["squareSum", "sumSquares"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 5, 40)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("min_diff_pair", "Smallest difference between any two elements")
def _min_diff_pair(sp: Spec) -> ast.Program:
    arr, i, j, best, d = sp.arr(), sp.loop("i"), sp.loop("j"), sp.acc(), sp.aux("d")
    params, length, args_b = solver_array_signature(sp, arr)
    use_abs = sp.lang != "c" and sp.flag("builtin_abs")
    if use_abs:
        diff_stmts = [decl(d, call("abs", sub(idx(arr, v(i)), idx(arr, v(j)))))]
    else:
        diff_stmts = [
            decl(d, sub(idx(arr, v(i)), idx(arr, v(j)))),
            if_(lt(v(d), 0), block(assign(d, neg(v(d))))),
        ]
    inner = block(*diff_stmts, if_(lt(v(d), v(best)), block(assign(best, v(d)))))
    body = [
        decl(best, 1000000),
        forto(i, 0, length, block(forto(j, add(v(i), 1), length, inner))),
        ret(v(best)),
    ]
    solver = func(sp.choice("fname", ["minGap", "closestPair"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 11), 0, 200)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("running_max_count", "How many times the running maximum changes")
def _running_max_count(sp: Spec) -> ast.Program:
    arr, i, best, c = sp.arr(), sp.loop(), sp.acc("best"), sp.acc("cnt")
    params, length, args_b = solver_array_signature(sp, arr)
    body = [decl(best, idx(arr, 0)), decl(c, 1)]
    body += count_loop(
        sp, "main", i, 1, length,
        [
            if_(
                gt(idx(arr, v(i)), v(best)),
                block(assign(best, idx(arr, v(i))), assign(c, add(v(c), 1))),
            )
        ],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["recordCount", "newHighs"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 8, 14), 0, 99)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("triangle_number", "n-th triangular number")
def _triangle_number(sp: Spec) -> ast.Program:
    n, i, s = sp.nvar(), sp.loop(), sp.acc()
    closed = sp.flag("closed_form")
    if closed:
        body = [ret(div(mul(v(n), add(v(n), 1)), 2))]
    else:
        body = [decl(s, 0)]
        body += count_loop(sp, "main", i, 1, add(v(n), 1), [assign(s, add(v(s), v(i)))], order_free=True)
        body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["triangle", "triNum"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 4, 60)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("diag_sum", "Trace of a flattened square matrix")
def _diag_sum(sp: Spec) -> ast.Program:
    arr, i, s, n = sp.arr(), sp.loop(), sp.acc(), sp.nvar()
    body = [decl(s, 0)]
    body += count_loop(
        sp, "main", i, 0, v(n),
        [assign(s, add(v(s), idx(arr, add(mul(v(i), v(n)), v(i)))))],
    )
    body.append(ret(v(s)))
    solver = func(
        sp.choice("fname", ["trace", "diagSum"]),
        [param(arr, array=True), param(n)],
        "int",
        block(*body),
    )
    dim = sp.int("dim", 3, 6)
    data = sp.ints("mat", dim * dim, 0, 25)
    main = func(
        "main", [], "int",
        block(
            decl_array("m2", array_lit(data)),
            pr(call(solver.name, v("m2"), dim)),
            ret(0),
        ),
    )
    return _program(sp, [solver, main])


@_register("count_vowel_codes", "Count elements equal to any of a small set")
def _count_vowel_codes(sp: Spec) -> ast.Program:
    # models character-class counting (vowels as their codes)
    arr, i, c = sp.arr(), sp.loop(), sp.acc()
    params, length, args_b = solver_array_signature(sp, arr)
    codes = [97, 101, 105, 111, 117]
    cond = eq(idx(arr, v(i)), codes[0])
    for code in codes[1:]:
        from repro.lang.dsl import lor

        cond = lor(cond, eq(idx(arr, v(i)), code))
    body = [decl(c, 0)]
    body += count_loop(sp, "main", i, 0, length, [if_(cond, block(assign(c, add(v(c), 1))))], order_free=True)
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["vowels", "countVowels"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 10, 18), 97, 123)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("sum_between_minmax", "Sum of elements strictly between min and max")
def _sum_between(sp: Spec) -> ast.Program:
    arr, i = sp.arr(), sp.loop()
    lo, hi, s = sp.acc("lo"), sp.acc("hi"), sp.acc("s")
    params, length, args_b = solver_array_signature(sp, arr)
    body = [decl(lo, idx(arr, 0)), decl(hi, idx(arr, 0))]
    body += count_loop(
        sp, "scan", i, 1, length,
        [
            if_(lt(idx(arr, v(i)), v(lo)), block(assign(lo, idx(arr, v(i))))),
            if_(gt(idx(arr, v(i)), v(hi)), block(assign(hi, idx(arr, v(i))))),
        ],
    )
    j = sp.loop("j")
    body.append(decl(s, 0))
    body += count_loop(
        sp, "sum", j, 0, length,
        [
            if_(
                land(gt(idx(arr, v(j)), v(lo)), lt(idx(arr, v(j)), v(hi))),
                block(assign(s, add(v(s), idx(arr, v(j))))),
            )
        ],
    )
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["innerSum", "betweenSum"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 7, 13), 0, 60)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("leap_years", "Count leap years in [a, b]")
def _leap_years(sp: Spec) -> ast.Program:
    a, b2, c, y = sp.aux("a"), sp.aux("b"), sp.acc(), sp.loop()
    from repro.lang.dsl import lor

    is_leap = lor(
        land(eq(mod(v(y), 4), 0), ne(mod(v(y), 100), 0)),
        eq(mod(v(y), 400), 0),
    )
    body = [decl(c, 0)]
    body += count_loop(sp, "main", y, v(a), add(v(b2), 1), [if_(is_leap, block(assign(c, add(v(c), 1))))], order_free=True)
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["leapCount", "countLeap"]), [param(a), param(b2)], "int", block(*body))
    start = sp.int("start", 1900, 2000)
    end = start + sp.int("w", 10, 120)
    main = func("main", [], "int", block(pr(call(solver.name, start, end)), ret(0)))
    return _program(sp, [solver, main])


@_register("swap_even_odd", "Swap adjacent pairs then sum even indices")
def _swap_even_odd(sp: Spec) -> ast.Program:
    arr, i, t, s, j = sp.arr(), sp.loop("i"), sp.aux("t"), sp.acc(), sp.loop("j")
    params, length, args_b = solver_array_signature(sp, arr)
    body: List[ast.Stmt] = [
        decl(i, 0),
        while_(
            lt(add(v(i), 1), length),
            block(
                decl(t, idx(arr, v(i))),
                assign(idx(arr, v(i)), idx(arr, add(v(i), 1))),
                assign(idx(arr, add(v(i), 1)), v(t)),
                assign(i, add(v(i), 2)),
            ),
        ),
        decl(s, 0),
    ]
    body += count_loop(
        sp, "sum", j, 0, length,
        [if_(eq(mod(v(j), 2), 0), block(assign(s, add(v(s), idx(arr, v(j))))))],
    )
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["pairSwapSum", "shuffleSum"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 6, 12), 0, 50)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b)])


@_register("perfect_numbers", "Count perfect numbers up to n")
def _perfect_numbers(sp: Spec) -> ast.Program:
    n, i, j, s, c = sp.nvar(), sp.loop("i"), sp.loop("j"), sp.acc("s"), sp.acc("c")
    inner = block(if_(eq(mod(v(i), v(j)), 0), block(assign(s, add(v(s), v(j))))))
    body = [decl(c, 0)]
    body += count_loop(
        sp, "outer", i, 2, add(v(n), 1),
        [
            decl(s, 0),
            forto(j, 1, v(i), inner),
            if_(eq(v(s), v(i)), block(assign(c, add(v(c), 1)))),
        ],
    )
    body.append(ret(v(c)))
    solver = func(sp.choice("fname", ["perfects", "countPerfect"]), [param(n)], "int", block(*body))
    arg = sp.int("n", 10, 60)
    main = func("main", [], "int", block(pr(call(solver.name, arg)), ret(0)))
    return _program(sp, [solver, main])


@_register("clamp_sum", "Clamp all elements into a range, return the sum")
def _clamp_sum(sp: Spec) -> ast.Program:
    arr, i, s = sp.arr(), sp.loop(), sp.acc()
    lo_v, hi_v = sp.aux("lo"), sp.aux("hi")
    params, length, args_b = solver_array_signature(sp, arr)
    params = params + [param(lo_v), param(hi_v)]
    use_builtin = sp.lang != "c" and sp.flag("builtin_clamp")
    if use_builtin:
        update = [assign(s, add(v(s), call("max", v(lo_v), call("min", v(hi_v), idx(arr, v(i))))))]
    else:
        x = sp.aux("x")
        update = [
            decl(x, idx(arr, v(i))),
            if_(lt(v(x), v(lo_v)), block(assign(x, v(lo_v)))),
            if_(gt(v(x), v(hi_v)), block(assign(x, v(hi_v)))),
            assign(s, add(v(s), v(x))),
        ]
    body = [decl(s, 0)]
    body += count_loop(sp, "main", i, 0, length, update)
    body.append(ret(v(s)))
    solver = func(sp.choice("fname", ["clampSum", "boundedSum"]), params, "int", block(*body))
    data = sp.ints("arr", sp.int("n", 7, 13), -40, 120)
    lo = sp.int("lo", 0, 20)
    hi = lo + sp.int("w", 20, 60)
    return _program(sp, [solver, _main_with_array(sp, solver, data, args_b, extra_args=(lo, hi))])


ALL_TASK_NAMES = sorted(TASK_REGISTRY)
