"""MiniJava front-end: renderer (AST → Java source) and parser (Java → AST).

Java solutions use ``a.length``, ``new int[n]``, ``Math.max/min/abs``,
``Arrays.sort`` and ``System.out.println``.  The parser canonicalizes these
to builtin calls; the JLang-like lowerer keeps library calls *external*
(no body in the module) and adds runtime scaffolding (bounds checks, array
headers), reproducing the Java-vs-C++ IR divergence the paper analyzes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser_base import ParseError, ParserBase


class MiniJavaRenderer:
    """Render a language-neutral AST as Java source (a ``Main`` class)."""

    language = "java"

    def type_str(self, t) -> str:
        """Java spelling of a type."""
        if isinstance(t, ast.ArrayType):
            return "int[]"
        mapping = {"int": "int", "long": "long", "bool": "boolean", "void": "void"}
        return mapping[t.name]

    def expr(self, e: ast.Expr) -> str:
        """Render an expression with Java idioms."""
        if isinstance(e, ast.IntLit):
            return str(e.value)
        if isinstance(e, ast.BoolLit):
            return "true" if e.value else "false"
        if isinstance(e, ast.Var):
            return e.name
        if isinstance(e, ast.BinOp):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, ast.UnaryOp):
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, ast.Index):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, ast.NewArray):
            return f"new int[{self.expr(e.size)}]"
        if isinstance(e, ast.ArrayLit):
            return "{" + ", ".join(self.expr(x) for x in e.elements) + "}"
        if isinstance(e, ast.Call):
            if e.name == "len":
                return f"{self.expr(e.args[0])}.length"
            if e.name in ("max", "min", "abs"):
                args = ", ".join(self.expr(a) for a in e.args)
                return f"Math.{e.name}({args})"
            if e.name == "sort":
                if len(e.args) == 2:
                    return f"Arrays.sort({self.expr(e.args[0])}, 0, {self.expr(e.args[1])})"
                return f"Arrays.sort({self.expr(e.args[0])})"
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.name}({args})"
        raise TypeError(f"cannot render {type(e).__name__} in MiniJava")

    def stmt(self, s: ast.Stmt, indent: int) -> List[str]:
        """Render a statement as source lines."""
        pad = "    " * indent
        if isinstance(s, ast.VarDecl):
            return [pad + self._decl_str(s) + ";"]
        if isinstance(s, ast.Assign):
            return [pad + f"{self.expr(s.target)} = {self.expr(s.value)};"]
        if isinstance(s, ast.If):
            lines = [pad + f"if ({self.expr(s.cond)}) {{"]
            lines += self.block_lines(s.then, indent + 1)
            if s.otherwise is not None:
                lines.append(pad + "} else {")
                lines += self.block_lines(s.otherwise, indent + 1)
            lines.append(pad + "}")
            return lines
        if isinstance(s, ast.While):
            lines = [pad + f"while ({self.expr(s.cond)}) {{"]
            lines += self.block_lines(s.body, indent + 1)
            lines.append(pad + "}")
            return lines
        if isinstance(s, ast.For):
            init = self._inline_stmt(s.init)
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self._inline_stmt(s.step)
            lines = [pad + f"for ({init}; {cond}; {step}) {{"]
            lines += self.block_lines(s.body, indent + 1)
            lines.append(pad + "}")
            return lines
        if isinstance(s, ast.Return):
            if s.value is None:
                return [pad + "return;"]
            return [pad + f"return {self.expr(s.value)};"]
        if isinstance(s, ast.Break):
            return [pad + "break;"]
        if isinstance(s, ast.Continue):
            return [pad + "continue;"]
        if isinstance(s, ast.Print):
            return [pad + f"System.out.println({self.expr(s.value)});"]
        if isinstance(s, ast.ExprStmt):
            return [pad + self.expr(s.expr) + ";"]
        if isinstance(s, ast.Block):
            return [pad + "{"] + self.block_lines(s, indent + 1) + [pad + "}"]
        raise TypeError(f"cannot render {type(s).__name__} in MiniJava")

    def _inline_stmt(self, s: Optional[ast.Stmt]) -> str:
        if s is None:
            return ""
        if isinstance(s, ast.VarDecl):
            return self._decl_str(s)
        if isinstance(s, ast.Assign):
            return f"{self.expr(s.target)} = {self.expr(s.value)}"
        if isinstance(s, ast.ExprStmt):
            return self.expr(s.expr)
        raise TypeError(f"cannot inline {type(s).__name__}")

    def _decl_str(self, s: ast.VarDecl) -> str:
        type_s = self.type_str(s.type)
        if s.init is None:
            return f"{type_s} {s.name}"
        return f"{type_s} {s.name} = {self.expr(s.init)}"

    def block_lines(self, block: ast.Block, indent: int) -> List[str]:
        """Render a block's statements."""
        lines: List[str] = []
        for s in block.statements:
            lines += self.stmt(s, indent)
        return lines

    def render(self, program: ast.Program) -> str:
        """Render the full ``Main`` class."""
        chunks: List[str] = []
        for f in program.functions:
            if f.name == "main":
                header = "    public static void main(String[] args) {"
            else:
                params = ", ".join(f"{self.type_str(p.type)} {p.name}" for p in f.params)
                header = f"    static {self.type_str(f.return_type)} {f.name}({params}) {{"
            body = self.block_lines(f.body, 2)
            chunks.append("\n".join([header] + body + ["    }"]))
        return (
            "import java.util.Arrays;\n\npublic class Main {\n"
            + "\n\n".join(chunks)
            + "\n}\n"
        )


class MiniJavaParser(ParserBase):
    """Parser for the MiniJava subset."""

    language = "java"

    def parse_type(self):
        """``int`` / ``long`` / ``boolean`` / ``void`` with optional ``[]``."""
        tok = self.advance()
        name = {"boolean": "bool"}.get(tok.value, tok.value)
        if name not in ("int", "long", "bool", "void"):
            raise ParseError(f"[java] line {tok.line}: expected type, got {tok.value!r}")
        scalar = ast.ScalarType(name)
        if self.accept("["):
            self.expect("]")
            return ast.ArrayType(scalar)
        return scalar

    def looks_like_decl(self) -> bool:
        """Declarations start with a Java type keyword."""
        return self.peek().kind == "kw" and self.peek().value in (
            "int",
            "long",
            "boolean",
        )

    def parse_decl(self) -> ast.Stmt:
        """``int x = e`` | ``int[] a = new int[n]`` | ``int[] a = {..}``."""
        t = self.parse_type()
        name = self.expect_kind("id").value
        init = None
        if self.accept("="):
            if self.check("{"):
                init = self._parse_brace_list()
            else:
                init = self.parse_expr()
        return ast.VarDecl(name, t, init)

    def _parse_brace_list(self) -> ast.ArrayLit:
        self.expect("{")
        elems: List[ast.Expr] = []
        if not self.check("}"):
            elems.append(self.parse_expr())
            while self.accept(","):
                elems.append(self.parse_expr())
        self.expect("}")
        return ast.ArrayLit(elems)

    def parse_primary_hook(self) -> Optional[ast.Expr]:
        """``new int[n]``, ``Math.fn(args)``, ``Arrays.sort(...)``."""
        tok = self.peek()
        if tok.kind == "kw" and tok.value == "new":
            self.advance()
            elem_tok = self.advance()
            if elem_tok.value not in ("int", "long"):
                raise ParseError(f"[java] line {tok.line}: new {elem_tok.value}[] unsupported")
            self.expect("[")
            size = self.parse_expr()
            self.expect("]")
            return ast.NewArray(ast.ScalarType(elem_tok.value), size)
        if tok.kind == "id" and tok.value in ("Math", "Arrays") and self.peek(1).value == ".":
            namespace = tok.value
            self.advance()
            self.advance()
            method = self.expect_kind("id").value
            args = self.parse_call_args()
            return self._canonical_library_call(namespace, method, args, tok.line)
        return None

    def _canonical_library_call(
        self, namespace: str, method: str, args: List[ast.Expr], line: int
    ) -> ast.Expr:
        if namespace == "Math" and method in ("max", "min", "abs"):
            return ast.Call(method, args)
        if namespace == "Arrays" and method == "sort":
            if len(args) == 1:
                return ast.Call("sort", [args[0], ast.Call("len", [args[0]])])
            if len(args) == 3:
                # Arrays.sort(a, 0, n) — from-index must be 0 in our subset
                return ast.Call("sort", [args[0], args[2]])
            raise ParseError(f"[java] line {line}: unsupported Arrays.sort arity")
        raise ParseError(f"[java] line {line}: unknown library call {namespace}.{method}")

    def parse_postfix_hook(self, expr: ast.Expr) -> Optional[ast.Expr]:
        """``expr.length`` → len(expr)."""
        if self.peek().value == "." and self.peek(1).value == "length":
            self.advance()
            self.advance()
            return ast.Call("len", [expr])
        return None

    def parse_print_hook(self) -> Optional[ast.Stmt]:
        """``System.out.println(expr);`` → Print."""
        tok = self.peek()
        if (
            tok.kind == "id"
            and tok.value == "System"
            and self.peek(1).value == "."
            and self.peek(2).value == "out"
        ):
            self.advance()
            self.expect(".")
            self.expect("out")
            self.expect(".")
            self.expect("println")
            self.expect("(")
            value = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.Print(value)
        return None

    # ----------------------------------------------------------- program
    def parse_method(self) -> ast.Function:
        """``[public] static type name(params) { body }``."""
        self.accept("public")
        self.expect("static")
        ret = self.parse_type()
        name = self.expect_kind("id").value
        self.expect("(")
        params: List[ast.Param] = []
        if not self.check(")"):
            params.append(self._parse_param())
            while self.accept(","):
                params.append(self._parse_param())
        self.expect(")")
        body = self.parse_block()
        return ast.Function(name, params, ret, body)

    def _parse_param(self) -> ast.Param:
        if self.peek().kind == "id" and self.peek().value == "String":
            # `String[] args` on main — consumed and ignored
            self.advance()
            self.expect("[")
            self.expect("]")
            self.expect_kind("id")
            return ast.Param("__args", ast.ScalarType("void"))
        t = self.parse_type()
        name = self.expect_kind("id").value
        return ast.Param(name, t)

    def parse_program(self) -> ast.Program:
        """Parse ``[import ...;]* public class Main { methods }``."""
        while self.peek().kind == "id" and self.peek().value == "import":
            while not self.accept(";"):
                self.advance()
        self.accept("public")
        self.expect("class")
        self.expect_kind("id")
        self.expect("{")
        functions: List[ast.Function] = []
        while not self.check("}"):
            f = self.parse_method()
            f.params = [p for p in f.params if p.name != "__args"]
            functions.append(f)
        self.expect("}")
        return ast.Program(functions, language="java")


def parse_minijava(source: str) -> ast.Program:
    """Parse MiniJava source text into a Program."""
    return MiniJavaParser(tokenize(source)).parse_program()
