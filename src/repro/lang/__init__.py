"""``repro.lang`` — source-language front-ends (the Clang/JLang substitute).

Three miniature languages — MiniC, MiniCpp, MiniJava — share one abstract
syntax (:mod:`repro.lang.ast`) but differ in surface syntax, idioms and
runtime model, mirroring how real C/C++/Java solutions to the same
competitive-programming task differ.  The package provides:

* a seeded *task/solution generator* (:mod:`repro.lang.tasks`,
  :mod:`repro.lang.generator`) standing in for the CLCDSA / POJ-104 corpora,
* per-language *renderers* (AST → source text),
* a lexer and per-language recursive-descent *parsers* (source text → AST),
  so the pipeline genuinely compiles program text, not in-memory objects.
"""

from repro.lang.ast import (
    ArrayType,
    Assign,
    BinOp,
    Block,
    BoolLit,
    Break,
    Call,
    Continue,
    ExprStmt,
    For,
    Function,
    If,
    Index,
    IntLit,
    NewArray,
    Param,
    Print,
    Program,
    Return,
    ScalarType,
    UnaryOp,
    Var,
    VarDecl,
    While,
)
from repro.lang.lexer import Token, tokenize
from repro.lang.minic import MiniCRenderer, parse_minic
from repro.lang.minicpp import MiniCppRenderer, parse_minicpp
from repro.lang.minijava import MiniJavaRenderer, parse_minijava
from repro.lang.generator import SolutionGenerator, SourceFile
from repro.lang.tasks import TASK_REGISTRY, Task, get_task

__all__ = [
    "Program",
    "Function",
    "Param",
    "Block",
    "VarDecl",
    "Assign",
    "If",
    "While",
    "For",
    "Return",
    "Break",
    "Continue",
    "ExprStmt",
    "Print",
    "IntLit",
    "BoolLit",
    "Var",
    "BinOp",
    "UnaryOp",
    "Call",
    "Index",
    "NewArray",
    "ScalarType",
    "ArrayType",
    "Token",
    "tokenize",
    "MiniCRenderer",
    "MiniCppRenderer",
    "MiniJavaRenderer",
    "parse_minic",
    "parse_minicpp",
    "parse_minijava",
    "SolutionGenerator",
    "SourceFile",
    "Task",
    "TASK_REGISTRY",
    "get_task",
]
