"""IR module ⇄ JSON-safe dict (de)serialization.

The artifact store persists the IR modules a compilation produced so warm
corpus rebuilds skip the front-end, the optimizer and the decompiler
entirely.  The format is a plain JSON-safe dict — no pickle — mirroring
the object model one level at a time: operands are encoded as references
(constant value, argument index, or instruction index within the
function), branch targets as block indices.  Round-trips are exact: the
printer renders the restored module to the same text, and the graph
builder produces a fingerprint-identical :class:`ProgramGraph`.
"""

from __future__ import annotations

import json
from functools import lru_cache
from typing import Dict, List, Optional

from repro.ir.module import (
    Argument,
    BasicBlock,
    Constant,
    Function,
    Instruction,
    Module,
    Value,
)
from repro.ir.types import LABEL, VOID, IntType, IRType, PtrType

FORMAT_VERSION = 1


@lru_cache(maxsize=None)
def type_from_str(spec: str) -> IRType:
    """Parse the printer's type spelling (``i32``, ``i64*``, ``void``).

    Cached: types are interned value objects and a corpus-sized decode
    calls this tens of thousands of times with a handful of spellings.
    """
    depth = len(spec) - len(spec.rstrip("*"))
    base = spec[: len(spec) - depth] if depth else spec
    if base == "void":
        t: IRType = VOID
    elif base == "label":
        t = LABEL
    elif base.startswith("i") and base[1:].isdigit():
        t = IntType(int(base[1:]))
    else:
        raise ValueError(f"unknown IR type spelling {spec!r}")
    for _ in range(depth):
        t = PtrType(t)
    return t


def _operand_ref(op: Value, instr_index: Dict[int, int], arg_index: Dict[int, int]) -> list:
    if isinstance(op, Constant):
        return ["c", op.value, str(op.type)]
    if isinstance(op, Argument):
        return ["a", arg_index[id(op)]]
    if isinstance(op, Instruction):
        return ["i", instr_index[id(op)]]
    raise TypeError(f"cannot serialize operand {op!r}")


def _function_to_dict(fn: Function) -> dict:
    out = {
        "name": fn.name,
        "return_type": str(fn.return_type),
        "args": [[a.name, str(a.type)] for a in fn.args],
        "is_declaration": fn.is_declaration,
        "label_counter": fn._label_counter,
        "blocks": [],
    }
    if fn.is_declaration:
        return out
    instr_index: Dict[int, int] = {}
    block_index: Dict[int, int] = {}
    arg_index = {id(a): i for i, a in enumerate(fn.args)}
    for b, blk in enumerate(fn.blocks):
        block_index[id(blk)] = b
        for instr in blk.instructions:
            instr_index[id(instr)] = len(instr_index)
    for blk in fn.blocks:
        instrs = []
        for instr in blk.instructions:
            instrs.append(
                {
                    "op": instr.opcode,
                    "type": str(instr.type),
                    "operands": [
                        _operand_ref(op, instr_index, arg_index) for op in instr.operands
                    ],
                    "blocks": [block_index[id(t)] for t in instr.blocks],
                    "extra": dict(instr.extra),
                }
            )
        out["blocks"].append({"label": blk.label, "instructions": instrs})
    return out


def module_to_dict(module: Module) -> dict:
    """Encode a module as a JSON-safe dict (no pickle, no shared state)."""
    return {
        "format": FORMAT_VERSION,
        "name": module.name,
        "source_language": module.source_language,
        "functions": [_function_to_dict(fn) for fn in module.functions],
    }


def _function_from_dict(data: dict) -> Function:
    fn = Function(
        data["name"],
        [type_from_str(t) for _, t in data["args"]],
        [n for n, _ in data["args"]],
        type_from_str(data["return_type"]),
        is_declaration=data["is_declaration"],
    )
    fn._label_counter = data["label_counter"]
    if fn.is_declaration:
        return fn
    blocks = [BasicBlock(bd["label"]) for bd in data["blocks"]]
    for blk in blocks:
        blk.parent = fn
    fn.blocks = blocks
    # Two passes: instruction shells first (phis and back edges may reference
    # instructions and blocks that appear later), then operands and targets.
    shells: List[Instruction] = []
    for bd in data["blocks"]:
        for idata in bd["instructions"]:
            shells.append(
                Instruction(
                    idata["op"],
                    type=type_from_str(idata["type"]),
                    extra=dict(idata["extra"]),
                )
            )
    cursor = 0
    for blk, bd in zip(blocks, data["blocks"]):
        for idata in bd["instructions"]:
            instr = shells[cursor]
            cursor += 1
            for ref in idata["operands"]:
                kind = ref[0]
                if kind == "c":
                    instr.operands.append(Constant(ref[1], type_from_str(ref[2])))
                elif kind == "a":
                    instr.operands.append(fn.args[ref[1]])
                else:
                    instr.operands.append(shells[ref[1]])
            instr.blocks = [blocks[b] for b in idata["blocks"]]
            blk.append(instr)
    return fn


def module_from_dict(data: dict) -> Module:
    """Rebuild a module encoded by :func:`module_to_dict`."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported IR serialization format {data.get('format')!r}")
    module = Module(data["name"], source_language=data["source_language"])
    for fd in data["functions"]:
        module.add(_function_from_dict(fd))
    return module


class LazyModule(Module):
    """A module that defers decoding its function bodies until first use.

    The artifact store hands these out on warm loads: most consumers only
    ever read a sample's *graphs*, so paying the (dominant) module decode
    cost eagerly would cap the warm-build speedup.  The payload is the
    serialized JSON bytes of a :func:`module_to_dict` encoding; name and
    source language are known without parsing it.
    """

    def __init__(self, name: str, source_language: str, payload: bytes):  # noqa: D107
        self._pending: Optional[bytes] = None
        super().__init__(name, source_language=source_language)
        self._pending = payload

    @property
    def functions(self) -> List[Function]:  # type: ignore[override]
        """Function list, decoding the payload on first access."""
        if self._pending is not None:
            pending, self._pending = self._pending, None
            data = json.loads(pending.decode("utf-8"))
            if data.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported IR serialization format {data.get('format')!r}"
                )
            self._functions = [_function_from_dict(fd) for fd in data["functions"]]
        return self._functions

    @functions.setter
    def functions(self, value: List[Function]) -> None:
        self._functions = value
