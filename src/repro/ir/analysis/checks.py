"""Analysis-backed IR checks: what the structural verifier cannot see.

The structural verifier (:mod:`repro.ir.verifier`) checks shape — blocks
terminate, operands stay inside the function, phis lead their block.
These checks use the dataflow framework to judge *meaning*:

* ``dominance``  — every non-phi use is dominated by its definition (phi
  operands must dominate the *end* of their incoming block),
* ``reaching``   — every use is delivered a value by the reaching-defs
  fixpoint (catches uses only fed through impossible paths),
* ``phi-arity``  — phi operand count equals incoming-block count, and the
  incoming set covers exactly the reachable predecessors,
* ``unreachable``— blocks no entry path reaches (warning: passes such as
  simplifycfg legitimately leave these behind mid-pipeline).

Errors are what :func:`repro.ir.verifier.verify_dataflow` raises on;
warnings are reported by ``repro analyze`` but never fail a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ir.analysis.cfg import DominatorTree
from repro.ir.analysis.defuse import DefUseChains
from repro.ir.module import BasicBlock, Function, Instruction, Module
from repro.ir.types import VOID


def instruction_label(instr: Instruction) -> str:
    """``%uid = opcode`` for value producers, bare opcode otherwise."""
    if instr.type != VOID:
        return f"{instr.short()} = {instr.opcode}"
    return instr.opcode

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One verifier diagnosis, with enough coordinates to act on."""

    severity: str
    kind: str
    function: str
    block: str
    instruction: str  # the offending instruction's short() spelling
    message: str

    def render(self) -> str:
        """Human-readable one-liner (the CLI's text output)."""
        return (
            f"[{self.severity}] {self.kind}: {self.function}/{self.block} "
            f"{self.instruction}: {self.message}"
        )


def _finding(
    severity: str,
    kind: str,
    fn: Function,
    block: BasicBlock,
    instr: Instruction,
    message: str,
) -> Finding:
    return Finding(
        severity=severity,
        kind=kind,
        function=fn.name,
        block=block.label,
        instruction=instruction_label(instr),
        message=message,
    )


def _dominance_findings(fn: Function, dom: DominatorTree) -> List[Finding]:
    out: List[Finding] = []
    position = {id(i): p for p, i in enumerate(fn.instructions())}
    for blk in fn.blocks:
        if not dom.reachable(blk):
            continue
        for instr in blk.instructions:
            for pos, op in enumerate(instr.operands):
                if not isinstance(op, Instruction) or op.parent is None:
                    continue
                if not dom.reachable(op.parent):
                    # Defs in unreachable code dominate vacuously (LLVM's
                    # rule): no entry path reaches the use through them,
                    # and DCE/simplifycfg prune them later in the level.
                    continue
                if instr.opcode == "phi":
                    incoming = instr.blocks[pos] if pos < len(instr.blocks) else None
                    if incoming is None or not dom.reachable(incoming):
                        continue  # arity findings cover this
                    # The value must be available at the end of the
                    # incoming block: def block dominates it.
                    if not dom.dominates(op.parent, incoming):
                        out.append(
                            _finding(
                                SEVERITY_ERROR,
                                "dominance",
                                fn,
                                blk,
                                instr,
                                f"phi operand {op.short()} (def in "
                                f"{op.parent.label}) does not dominate "
                                f"incoming block {incoming.label}",
                            )
                        )
                elif op.parent is blk:
                    if position[id(op)] >= position[id(instr)]:
                        out.append(
                            _finding(
                                SEVERITY_ERROR,
                                "dominance",
                                fn,
                                blk,
                                instr,
                                f"use of {op.short()} before its definition "
                                f"in the same block",
                            )
                        )
                elif not dom.strictly_dominates(op.parent, blk):
                    out.append(
                        _finding(
                            SEVERITY_ERROR,
                            "dominance",
                            fn,
                            blk,
                            instr,
                            f"use of {op.short()} (def in {op.parent.label}) "
                            f"not dominated by its definition",
                        )
                    )
    return out


def _phi_findings(fn: Function, dom: DominatorTree) -> List[Finding]:
    out: List[Finding] = []
    preds = fn.predecessors()
    for blk in fn.blocks:
        if not dom.reachable(blk):
            continue
        reachable_preds = {
            id(p): p for p in preds[blk] if dom.reachable(p)
        }
        for phi in blk.phis():
            if len(phi.operands) != len(phi.blocks):
                out.append(
                    _finding(
                        SEVERITY_ERROR,
                        "phi-arity",
                        fn,
                        blk,
                        phi,
                        f"{len(phi.operands)} operands but "
                        f"{len(phi.blocks)} incoming blocks",
                    )
                )
                continue
            incoming = {id(b): b for b in phi.blocks}
            missing = [
                p.label
                for i, p in reachable_preds.items()
                if i not in incoming
            ]
            # Entries from unreachable blocks are dead, not wrong: passes
            # (peel, mem2reg) leave them for simplifycfg/DCE to prune.
            extra = [
                b.label
                for i, b in incoming.items()
                if i not in reachable_preds and dom.reachable(b)
            ]
            if missing or extra:
                detail = []
                if missing:
                    detail.append(f"missing incoming for {sorted(missing)}")
                if extra:
                    detail.append(f"spurious incoming from {sorted(extra)}")
                out.append(
                    _finding(
                        SEVERITY_ERROR,
                        "phi-arity",
                        fn,
                        blk,
                        phi,
                        "; ".join(detail),
                    )
                )
    return out


def analyze_function(fn: Function) -> List[Finding]:
    """All findings for one defined function (empty for declarations)."""
    if fn.is_declaration or not fn.blocks:
        return []
    dom = DominatorTree(fn)
    out = _dominance_findings(fn, dom) + _phi_findings(fn, dom)
    # Reaching-defs cross-check: a use no definition ever flows to.  The
    # dominance pass already flags these on reachable paths, so only
    # report ones dominance missed (defensive double-entry bookkeeping).
    dominance_flagged = {
        (f.block, f.instruction) for f in out if f.kind == "dominance"
    }
    chains = DefUseChains.build(fn)
    for op, instr in chains.invalid_uses():
        blk = instr.parent
        if blk is None:
            continue
        key = (blk.label, instruction_label(instr))
        if key in dominance_flagged:
            continue
        out.append(
            _finding(
                SEVERITY_ERROR,
                "reaching",
                fn,
                blk,
                instr,
                f"no definition of {op.short()} reaches this use",
            )
        )
    reachable = fn.reachable_blocks()
    for blk in fn.blocks:
        if blk in reachable or not blk.instructions:
            continue
        out.append(
            _finding(
                SEVERITY_WARNING,
                "unreachable",
                fn,
                blk,
                blk.instructions[0],
                "block is unreachable from the entry",
            )
        )
    return out


def analyze_module(module: Module) -> List[Finding]:
    """Findings for every defined function, in module order."""
    out: List[Finding] = []
    for fn in module.defined_functions():
        out.extend(analyze_function(fn))
    return out
