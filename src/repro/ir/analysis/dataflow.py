"""Generic iterative dataflow framework plus the two classic instances.

The solver is the textbook worklist algorithm over a join semilattice of
frozen fact sets: each analysis declares a direction, per-block GEN/KILL
behaviour via :meth:`DataflowAnalysis.transfer`, and (optionally) a
per-edge refinement — which is how :class:`Liveness` attributes phi
operands to the incoming edge instead of the phi's own block, the standard
SSA treatment.

Facts are hashable tokens chosen by each analysis (instruction ``uid``
ints here), so fixpoints are set-equality tests and results serialize
deterministically.  Iteration order is reverse postorder for forward
problems and postorder for backward ones, which keeps the pass count
near-minimal on reducible CFGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Tuple

from repro.ir.analysis.cfg import postorder, reverse_postorder
from repro.ir.module import BasicBlock, Function, Instruction
from repro.ir.types import VOID

Fact = Hashable
FactSet = FrozenSet[Fact]

EMPTY: FactSet = frozenset()


@dataclass
class DataflowResult:
    """Fixpoint solution: per-block IN/OUT sets plus iteration accounting."""

    block_in: Dict[int, FactSet] = field(default_factory=dict)
    block_out: Dict[int, FactSet] = field(default_factory=dict)
    iterations: int = 0

    def in_of(self, block: BasicBlock) -> FactSet:
        """Facts holding at block entry (empty for unreachable blocks)."""
        return self.block_in.get(id(block), EMPTY)

    def out_of(self, block: BasicBlock) -> FactSet:
        """Facts holding at block exit (empty for unreachable blocks)."""
        return self.block_out.get(id(block), EMPTY)


class DataflowAnalysis:
    """Base class: a monotone may-analysis over sets (meet = union)."""

    #: ``"forward"`` propagates entry→exit, ``"backward"`` exit→entry.
    direction = "forward"

    def transfer(self, block: BasicBlock, facts: FactSet) -> FactSet:
        """One block's GEN/KILL applied to the incoming fact set."""
        raise NotImplementedError

    def edge_facts(self, src: BasicBlock, dst: BasicBlock) -> FactSet:
        """Extra facts generated on the ``src``→``dst`` CFG edge."""
        return EMPTY


def solve(analysis: DataflowAnalysis, fn: Function) -> DataflowResult:
    """Iterate ``analysis`` over ``fn``'s reachable blocks to a fixpoint."""
    forward = analysis.direction == "forward"
    order = reverse_postorder(fn) if forward else postorder(fn)
    if not order:
        return DataflowResult()
    preds = fn.predecessors()
    result = DataflowResult()
    for block in order:
        result.block_in[id(block)] = EMPTY
        result.block_out[id(block)] = EMPTY
    reachable = set(result.block_in)

    changed = True
    while changed:
        changed = False
        result.iterations += 1
        for block in order:
            if forward:
                sources = [p for p in preds[block] if id(p) in reachable]
                joined = frozenset().union(
                    *(
                        result.block_out[id(p)] | analysis.edge_facts(p, block)
                        for p in sources
                    )
                ) if sources else EMPTY
                out = analysis.transfer(block, joined)
                if joined != result.block_in[id(block)] or out != result.block_out[id(block)]:
                    result.block_in[id(block)] = joined
                    result.block_out[id(block)] = out
                    changed = True
            else:
                succs = [s for s in block.successors() if id(s) in reachable]
                joined = frozenset().union(
                    *(
                        result.block_in[id(s)] | analysis.edge_facts(block, s)
                        for s in succs
                    )
                ) if succs else EMPTY
                inset = analysis.transfer(block, joined)
                if joined != result.block_out[id(block)] or inset != result.block_in[id(block)]:
                    result.block_out[id(block)] = joined
                    result.block_in[id(block)] = inset
                    changed = True
    return result


def is_memory_def(instr: Instruction) -> bool:
    """True for stores that define a statically-known alloca slot."""
    return (
        instr.opcode == "store"
        and len(instr.operands) == 2
        and isinstance(instr.operands[1], Instruction)
        and instr.operands[1].opcode == "alloca"
    )


class ReachingDefinitions(DataflowAnalysis):
    """Which definitions may reach each program point (forward, may).

    Definitions are value-producing instructions (identified by ``uid``)
    plus stores into alloca slots.  SSA values are defined exactly once,
    so they have empty kill sets; a store kills every *other* store to
    the same alloca — the classic GEN/KILL structure, which is what makes
    this a genuine fixpoint rather than plain reachability.
    """

    def __init__(self, fn: Function):  # noqa: D107
        self.function = fn
        # store uid -> alloca uid, and alloca uid -> all store uids to it.
        self._slot_of: Dict[int, int] = {}
        self._stores_of: Dict[int, List[int]] = {}
        for instr in fn.instructions():
            if is_memory_def(instr):
                slot = instr.operands[1].uid
                self._slot_of[instr.uid] = slot
                self._stores_of.setdefault(slot, []).append(instr.uid)

    def defs_in(self, block: BasicBlock) -> List[Instruction]:
        """The definitions a block generates, in program order."""
        return [
            i
            for i in block.instructions
            if i.type != VOID or is_memory_def(i)
        ]

    def transfer(self, block: BasicBlock, facts: FactSet) -> FactSet:
        live = set(facts)
        for instr in block.instructions:
            if is_memory_def(instr):
                slot = self._slot_of[instr.uid]
                for other in self._stores_of[slot]:
                    live.discard(other)
                live.add(instr.uid)
            elif instr.type != VOID:
                live.add(instr.uid)
        return frozenset(live)


class Liveness(DataflowAnalysis):
    """Which values are live (may be used later) at each point (backward).

    Facts are the ``uid``s of instructions and the *argument index*
    tokens ``("arg", i)`` for function parameters.  Phi operands are
    attributed to the incoming edge — the value is live out of the
    predecessor, not live into the phi's own block — via
    :meth:`edge_facts`.
    """

    direction = "backward"

    def __init__(self, fn: Function):  # noqa: D107
        self.function = fn
        self._arg_token = {id(a): ("arg", a.index) for a in fn.args}

    def _token(self, value) -> Fact:
        if isinstance(value, Instruction):
            return value.uid
        return self._arg_token.get(id(value))

    def uses_of(self, instr: Instruction) -> Iterable[Fact]:
        """Fact tokens for an instruction's non-constant operands."""
        for op in instr.operands:
            tok = self._token(op)
            if tok is not None:
                yield tok

    def transfer(self, block: BasicBlock, facts: FactSet) -> FactSet:
        live = set(facts)
        for instr in reversed(block.instructions):
            if instr.type != VOID:
                live.discard(instr.uid)
            if instr.opcode == "phi":
                continue  # uses belong to the incoming edges
            for tok in self.uses_of(instr):
                live.add(tok)
        return frozenset(live)

    def edge_facts(self, src: BasicBlock, dst: BasicBlock) -> FactSet:
        facts = set()
        for phi in dst.phis():
            for op, blk in zip(phi.operands, phi.blocks):
                if blk is src:
                    tok = self._token(op)
                    if tok is not None:
                        facts.add(tok)
        return frozenset(facts)

    def live_in(self, result: DataflowResult, block: BasicBlock) -> Tuple[Fact, ...]:
        """Deterministically ordered live-in tokens for reporting."""
        return tuple(sorted(result.in_of(block), key=repr))

    def live_out(self, result: DataflowResult, block: BasicBlock) -> Tuple[Fact, ...]:
        """Deterministically ordered live-out tokens for reporting."""
        return tuple(sorted(result.out_of(block), key=repr))


def reaching_definitions(fn: Function) -> Tuple[ReachingDefinitions, DataflowResult]:
    """Convenience: construct and solve reaching definitions for ``fn``."""
    analysis = ReachingDefinitions(fn)
    return analysis, solve(analysis, fn)


def liveness(fn: Function) -> Tuple[Liveness, DataflowResult]:
    """Convenience: construct and solve liveness for ``fn``."""
    analysis = Liveness(fn)
    return analysis, solve(analysis, fn)
