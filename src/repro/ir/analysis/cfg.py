"""CFG utilities: traversal orders, dominators, dominance frontiers.

Everything here is deterministic: traversals follow the successor order
stored on each terminator, so two processes analyzing the same module
produce identical orders, identical dominator trees and — downstream —
bit-identical graph edges (the property ``bench_dataflow`` gates).

Dominators use the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
Fast Dominance Algorithm", 2001): intersection walks over postorder
numbers, convergence in a handful of passes on reducible CFGs.  Only
blocks reachable from the entry participate; unreachable blocks have no
immediate dominator and dominate nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.module import BasicBlock, Function


def postorder(fn: Function) -> List[BasicBlock]:
    """Reachable blocks in depth-first postorder (children before parents)."""
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    if not fn.blocks:
        return order
    # Iterative DFS with an explicit phase marker so successor order — and
    # therefore the emitted order — matches the recursive formulation.
    stack: List[tuple] = [(fn.entry, False)]
    while stack:
        block, expanded = stack.pop()
        if expanded:
            order.append(block)
            continue
        if id(block) in seen:
            continue
        seen.add(id(block))
        stack.append((block, True))
        for succ in reversed(block.successors()):
            if id(succ) not in seen:
                stack.append((succ, False))
    return order


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reachable blocks in reverse postorder (every block after its
    forward-edge predecessors) — the canonical iteration order for forward
    dataflow problems."""
    return list(reversed(postorder(fn)))


def immediate_dominators(fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """Map each reachable block to its immediate dominator.

    The entry block maps to ``None``.  Unreachable blocks are absent.
    """
    po = postorder(fn)
    if not po:
        return {}
    po_number = {id(b): i for i, b in enumerate(po)}
    entry = fn.entry
    preds = fn.predecessors()

    idom: Dict[int, BasicBlock] = {id(entry): entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while po_number[id(a)] < po_number[id(b)]:
                a = idom[id(a)]
            while po_number[id(b)] < po_number[id(a)]:
                b = idom[id(b)]
        return a

    rpo = list(reversed(po))
    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is entry:
                continue
            new_idom: Optional[BasicBlock] = None
            for pred in preds[block]:
                if id(pred) not in po_number:
                    continue  # unreachable predecessor
                if new_idom is None:
                    if id(pred) in idom:
                        new_idom = pred
                elif id(pred) in idom:
                    new_idom = intersect(pred, new_idom)
            if new_idom is not None and idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True

    out: Dict[BasicBlock, Optional[BasicBlock]] = {entry: None}
    for block in po:
        if block is entry:
            continue
        out[block] = idom[id(block)]
    return out


class DominatorTree:
    """Dominance queries over one function, built once and reused.

    ``dominates(a, b)`` answers in O(1) via entry/exit interval numbering
    of the dominator tree (a dominates b iff b's interval nests inside
    a's).  Instruction-level queries refine block dominance with
    within-block position, matching the LLVM verifier's definition: a
    non-phi use is valid iff its definition *strictly* precedes it in the
    same block, or the defining block strictly dominates the using block.
    """

    def __init__(self, fn: Function):  # noqa: D107
        self.function = fn
        self.idom = immediate_dominators(fn)
        children: Dict[int, List[BasicBlock]] = {id(b): [] for b in self.idom}
        for block, parent in self.idom.items():
            if parent is not None:
                children[id(parent)].append(block)
        # Interval numbering by explicit DFS from the entry.
        self._tin: Dict[int, int] = {}
        self._tout: Dict[int, int] = {}
        clock = 0
        if fn.blocks:
            stack: List[tuple] = [(fn.entry, False)]
            while stack:
                block, expanded = stack.pop()
                if expanded:
                    self._tout[id(block)] = clock
                    clock += 1
                    continue
                self._tin[id(block)] = clock
                clock += 1
                stack.append((block, True))
                for child in reversed(children[id(block)]):
                    stack.append((child, False))

    def reachable(self, block: BasicBlock) -> bool:
        """True when ``block`` participates in the dominator tree."""
        return id(block) in self._tin

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when every entry→b path passes through ``a`` (reflexive)."""
        if id(a) not in self._tin or id(b) not in self._tin:
            return False
        return (
            self._tin[id(a)] <= self._tin[id(b)]
            and self._tout[id(b)] <= self._tout[id(a)]
        )

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """``dominates`` minus reflexivity."""
        return a is not b and self.dominates(a, b)


def dominance_frontiers(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each reachable block to its dominance frontier.

    Cooper–Harvey–Kennedy again: for a join block (≥2 reachable preds),
    walk each predecessor's idom chain up to the block's own idom, adding
    the join to every frontier passed.  Frontier lists are deterministic
    (reverse-postorder of the join blocks, each frontier deduplicated in
    first-seen order).
    """
    idom = immediate_dominators(fn)
    frontiers: Dict[int, List[BasicBlock]] = {id(b): [] for b in idom}
    preds = fn.predecessors()
    for block in reverse_postorder(fn):
        reachable_preds = [p for p in preds[block] if id(p) in frontiers]
        if len(reachable_preds) < 2:
            continue
        for pred in reachable_preds:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom[block]:
                bucket = frontiers[id(runner)]
                if not any(b is block for b in bucket):
                    bucket.append(block)
                runner = idom[runner]
    return {block: frontiers[id(block)] for block in idom}
