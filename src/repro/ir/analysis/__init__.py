"""Fixed-point dataflow analyses over the IR (see ``docs/analysis.md``).

Layers, bottom to top:

* :mod:`~repro.ir.analysis.cfg` — traversal orders, dominators,
  dominance frontiers (pure graph algorithms),
* :mod:`~repro.ir.analysis.dataflow` — the generic worklist solver with
  :class:`ReachingDefinitions` and :class:`Liveness` instances,
* :mod:`~repro.ir.analysis.defuse` — def-use / use-def chains and the
  cross-block pairs the ``dataflow`` graph relation is built from,
* :mod:`~repro.ir.analysis.callgraph` — the call graph with
  interprocedural mod/ref/purity summaries (one fixpoint per SCC),
* :mod:`~repro.ir.analysis.checks` — analysis-backed verification
  findings consumed by :func:`repro.ir.verifier.verify_dataflow`.
"""

from repro.ir.analysis.callgraph import CallGraph, FunctionSummary, call_graph
from repro.ir.analysis.cfg import (
    DominatorTree,
    dominance_frontiers,
    immediate_dominators,
    postorder,
    reverse_postorder,
)
from repro.ir.analysis.checks import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    analyze_function,
    analyze_module,
)
from repro.ir.analysis.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Liveness,
    ReachingDefinitions,
    liveness,
    reaching_definitions,
    solve,
)
from repro.ir.analysis.defuse import DefUseChains, Use

__all__ = [
    "CallGraph",
    "DataflowAnalysis",
    "DataflowResult",
    "DefUseChains",
    "DominatorTree",
    "Finding",
    "FunctionSummary",
    "Liveness",
    "ReachingDefinitions",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Use",
    "analyze_function",
    "analyze_module",
    "call_graph",
    "dominance_frontiers",
    "immediate_dominators",
    "liveness",
    "postorder",
    "reaching_definitions",
    "reverse_postorder",
    "solve",
]
