"""Def-use / use-def chains, derived from (and validated by) reaching defs.

The chains themselves come from the operand graph — the IR stores direct
:class:`~repro.ir.module.Value` references, so collecting users is one
deterministic scan in block/instruction order.  What reaching definitions
adds is *validation*: a use whose definition does not reach it (per the
fixpoint) is exactly the "use before def" class of malformed IR, which
:func:`repro.ir.analysis.checks.analyze_function` reports and the graph
builder must never emit an edge for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.ir.analysis.dataflow import reaching_definitions
from repro.ir.module import Argument, Function, Instruction, Value
from repro.ir.types import VOID


@dataclass(frozen=True)
class Use:
    """One operand slot: ``user.operands[position] is value``."""

    user: Instruction
    position: int


@dataclass
class DefUseChains:
    """Both chain directions for one function.

    ``users[def]`` lists every use of a definition in block/instruction
    order (the order is what makes downstream edge emission bit-stable);
    ``defs[use]`` is the single defining value of each SSA use.  Keys are
    object ids because :class:`Value` hashing is identity anyway and the
    ids never escape this structure.
    """

    function: Function
    _users: Dict[int, List[Use]] = field(default_factory=dict)
    _values: Dict[int, Value] = field(default_factory=dict)

    @classmethod
    def build(cls, fn: Function) -> "DefUseChains":
        """Scan ``fn`` and collect chains for instructions and arguments."""
        chains = cls(fn)
        for arg in fn.args:
            chains._values[id(arg)] = arg
            chains._users[id(arg)] = []
        for instr in fn.instructions():
            chains._values[id(instr)] = instr
            chains._users.setdefault(id(instr), [])
        for instr in fn.instructions():
            for pos, op in enumerate(instr.operands):
                if isinstance(op, (Instruction, Argument)) and id(op) in chains._users:
                    chains._users[id(op)].append(Use(instr, pos))
        return chains

    def users(self, value: Value) -> List[Use]:
        """Every use of ``value`` inside this function, in program order."""
        return list(self._users.get(id(value), []))

    def definitions(self) -> Iterator[Value]:
        """All values with chains (arguments first, then instructions)."""
        return iter(self._values.values())

    def cross_block_pairs(self) -> List[Tuple[Instruction, Instruction, int]]:
        """Deduplicated (def, use, operand-position) pairs spanning blocks.

        These are the ``dataflow`` graph edges: def→use relationships the
        same-block operand edges do not already encode.  A (def, use) pair
        appears once even when the use reads the value in several operand
        slots — the recorded position is the first.  Phi uses count as
        cross-block when the *incoming block* differs from the def's block,
        since that is where the value actually flows in from.
        """
        pairs: List[Tuple[Instruction, Instruction, int]] = []
        seen: set = set()
        for instr in self.function.instructions():
            for pos, op in enumerate(instr.operands):
                if not isinstance(op, Instruction):
                    continue
                if op.parent is None or instr.parent is None:
                    continue
                if instr.opcode == "phi":
                    incoming = instr.blocks[pos] if pos < len(instr.blocks) else None
                    crosses = incoming is not op.parent
                else:
                    crosses = op.parent is not instr.parent
                if not crosses:
                    continue
                key = (op.uid, instr.uid)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append((op, instr, pos))
        return pairs

    def invalid_uses(self) -> List[Tuple[Instruction, Instruction]]:
        """(def, use) pairs the reaching-defs fixpoint says cannot happen.

        For a non-phi use in block B, the def must reach B's entry or be
        an earlier instruction of B itself; for a phi use, the def must
        reach the *exit* of the named incoming block.  Anything else is a
        use the dataflow semantics never deliver a value to.
        """
        _, result = reaching_definitions(self.function)
        bad: List[Tuple[Instruction, Instruction]] = []
        for blk in self.function.blocks:
            if id(blk) not in result.block_in and blk is not self.function.entry:
                continue  # unreachable: no dataflow judgement
            earlier: set = set()
            for instr in blk.instructions:
                for pos, op in enumerate(instr.operands):
                    if not isinstance(op, Instruction) or op.type == VOID:
                        continue
                    if op.parent is not None and (
                        id(op.parent) not in result.block_in
                        and op.parent is not self.function.entry
                    ):
                        continue  # def in unreachable code: vacuously fine
                    if instr.opcode == "phi":
                        incoming = instr.blocks[pos] if pos < len(instr.blocks) else None
                        if incoming is None or id(incoming) not in result.block_out:
                            continue  # arity/unreachable issues are reported elsewhere
                        if op.uid not in result.out_of(incoming):
                            bad.append((op, instr))
                    elif op.uid not in result.in_of(blk) and op.uid not in earlier:
                        bad.append((op, instr))
                if instr.type != VOID:
                    earlier.add(instr.uid)
        return bad
