"""Call graph + interprocedural summaries propagated to fixpoint over SCCs.

Summaries answer the questions the graph builder and the verifier care
about: does calling ``f`` read or write memory, is it pure, and what is
the transitive set of functions it may reach?  Local facts come from one
scan per function; interprocedural effects propagate over Tarjan SCCs in
reverse topological order, with the members of each cycle unioned to a
shared fixpoint — mutual recursion converges in one step instead of
iterating instruction-level transfer functions.

Declarations (externals — the JLang runtime calls the decompiled side is
full of) are maximally conservative: they may read, write, and call
anything, and are never pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.ir.module import Function, Module


@dataclass(frozen=True)
class FunctionSummary:
    """Flow-insensitive mod/ref facts for one function, callees included."""

    name: str
    defined: bool
    reads_memory: bool
    writes_memory: bool
    calls_external: bool
    may_call: FrozenSet[str]
    size: int

    @property
    def pure(self) -> bool:
        """No memory effects and no reachable external code."""
        return not (self.reads_memory or self.writes_memory or self.calls_external)

    def describe(self) -> str:
        """Stable one-line rendering (the ``callsummary`` node feature)."""
        flags = []
        if self.pure:
            flags.append("pure")
        if self.reads_memory:
            flags.append("reads")
        if self.writes_memory:
            flags.append("writes")
        if self.calls_external:
            flags.append("external")
        return (
            f"summary @{self.name} {'+'.join(flags) or 'none'}"
            f" calls={len(self.may_call)}"
        )


class CallGraph:
    """Who-calls-whom over one module, with derived summaries.

    ``callees[name]`` preserves call-site order (duplicates collapsed,
    first occurrence wins) so every traversal below is deterministic.
    """

    def __init__(self, module: Module):  # noqa: D107
        self.module = module
        self.callees: Dict[str, List[str]] = {}
        self.callers: Dict[str, List[str]] = {f.name: [] for f in module.functions}
        for fn in module.functions:
            out: List[str] = []
            if not fn.is_declaration:
                for instr in fn.instructions():
                    if instr.opcode == "call":
                        callee = instr.extra.get("callee", "")
                        if callee and callee not in out:
                            out.append(callee)
            self.callees[fn.name] = out
        for name, outs in self.callees.items():
            for callee in outs:
                if callee in self.callers and name not in self.callers[callee]:
                    self.callers[callee].append(name)

    # ------------------------------------------------------------------ SCC
    def sccs(self) -> List[List[str]]:
        """Strongly connected components in reverse topological order.

        Iterative Tarjan keyed on function order in the module, so the
        output (and everything derived from it) is process-independent.
        Edges to names with no module entry (unresolved callees) are
        ignored here and accounted for in the summaries instead.
        """
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        out: List[List[str]] = []
        counter = [0]

        known = {f.name for f in self.module.functions}

        def edges(name: str) -> List[str]:
            return [c for c in self.callees.get(name, []) if c in known]

        for root in (f.name for f in self.module.functions):
            if root in index:
                continue
            work: List[tuple] = [(root, iter(edges(root)))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                name, it = work[-1]
                advanced = False
                for child in it:
                    if child not in index:
                        index[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack[child] = True
                        work.append((child, iter(edges(child))))
                        advanced = True
                        break
                    if on_stack.get(child):
                        lowlink[name] = min(lowlink[name], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[name])
                if lowlink[name] == index[name]:
                    comp: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        comp.append(member)
                        if member == name:
                            break
                    out.append(sorted(comp))
        return out

    # ------------------------------------------------------------ summaries
    def summaries(self) -> Dict[str, FunctionSummary]:
        """Interprocedural mod/ref/purity facts, one fixpoint per SCC."""
        local: Dict[str, dict] = {}
        for fn in self.module.functions:
            facts = {
                "reads": False,
                "writes": False,
                "external": fn.is_declaration,
                "may_call": set(self.callees[fn.name]),
            }
            if not fn.is_declaration:
                for instr in fn.instructions():
                    if instr.opcode in ("load", "gep"):
                        facts["reads"] = True
                    elif instr.opcode in ("store", "alloca"):
                        facts["writes"] = True
                    elif instr.opcode == "call":
                        callee = instr.extra.get("callee", "")
                        if not callee or not self.module.has(callee):
                            facts["external"] = True
            local[fn.name] = facts

        # SCCs arrive callees-before-callers (reverse topological), so one
        # pass suffices; within an SCC, union the members to their mutual
        # fixpoint before folding callee effects in.
        resolved: Dict[str, dict] = {}
        for comp in self.sccs():
            merged = {
                "reads": False,
                "writes": False,
                "external": False,
                "may_call": set(),
            }
            for name in comp:
                facts = local[name]
                merged["reads"] |= facts["reads"]
                merged["writes"] |= facts["writes"]
                merged["external"] |= facts["external"]
                merged["may_call"] |= facts["may_call"]
            for callee in sorted(merged["may_call"]):
                if callee in comp:
                    continue
                sub = resolved.get(callee)
                if sub is None:
                    merged["external"] = True
                    continue
                merged["reads"] |= sub["reads"]
                merged["writes"] |= sub["writes"]
                merged["external"] |= sub["external"]
                merged["may_call"] |= sub["may_call"]
            for name in comp:
                resolved[name] = merged

        out: Dict[str, FunctionSummary] = {}
        for fn in self.module.functions:
            facts = resolved[fn.name]
            out[fn.name] = FunctionSummary(
                name=fn.name,
                defined=not fn.is_declaration,
                reads_memory=facts["reads"],
                writes_memory=facts["writes"],
                calls_external=facts["external"],
                may_call=frozenset(facts["may_call"] - {fn.name}),
                size=fn.size(),
            )
        return out


def call_graph(module: Module) -> CallGraph:
    """Convenience constructor mirroring the other analysis entry points."""
    return CallGraph(module)
