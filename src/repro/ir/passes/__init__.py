"""``repro.ir.passes`` — the LLVM optimization-pipeline substitute.

Pass inventory:

* :mod:`~repro.ir.passes.mem2reg` — promote scalar allocas to SSA (phi
  construction per Braun et al., *Simple and Efficient SSA Construction*).
* :mod:`~repro.ir.passes.constfold` — constant folding for binops/icmp/casts.
* :mod:`~repro.ir.passes.instcombine` — algebraic identities.
* :mod:`~repro.ir.passes.dce` — dead code elimination.
* :mod:`~repro.ir.passes.simplifycfg` — unreachable-block removal, constant
  branch folding, straight-line block merging.
* :mod:`~repro.ir.passes.inline` — bottom-up inlining of small callees.
* :mod:`~repro.ir.passes.peel` — loop peeling (the O3 "aggressive control
  flow tuning" the paper blames for decompilation drift).
* :mod:`~repro.ir.passes.pipeline` — O0/O1/O2/O3/Oz compositions.
"""

from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.inline import inline_functions
from repro.ir.passes.instcombine import instcombine
from repro.ir.passes.mem2reg import mem2reg
from repro.ir.passes.peel import peel_loops
from repro.ir.passes.pipeline import OPT_LEVELS, optimize
from repro.ir.passes.simplifycfg import simplify_cfg

__all__ = [
    "mem2reg",
    "constant_fold",
    "instcombine",
    "dead_code_elimination",
    "simplify_cfg",
    "inline_functions",
    "peel_loops",
    "optimize",
    "OPT_LEVELS",
]
