"""Dead code elimination: drop unused side-effect-free instructions."""

from __future__ import annotations

from repro.ir.module import Function, Instruction, Module
from repro.ir.passes.common import erase_instructions, use_counts

_PURE = {
    "alloca",
    "load",
    "gep",
    "add",
    "sub",
    "mul",
    "sdiv",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "ashr",
    "icmp",
    "zext",
    "sext",
    "trunc",
    "phi",
}


def dead_code_elimination(module: Module) -> int:
    """Iteratively remove unused pure instructions; returns removal count.

    Note: ``sdiv``/``srem`` can trap on zero divisors, but LLVM also treats
    unused division as removable (the trap is not a guaranteed side effect);
    we follow that semantics, which keeps O-levels observably equivalent on
    non-trapping programs.
    """
    removed = 0
    for fn in module.defined_functions():
        while True:
            counts = use_counts(fn)
            dead = [
                i
                for i in fn.instructions()
                if i.opcode in _PURE and counts.get(id(i), 0) == 0
            ]
            if not dead:
                break
            removed += erase_instructions(fn, dead)
    return removed
