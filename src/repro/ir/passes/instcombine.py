"""Instruction combining: cheap algebraic identities.

``x+0``, ``x-0``, ``x*1``, ``x*0``, ``x/1``, ``x^0``, ``x<<0``, ``x>>0``,
``0+x``, ``1*x``, ``-(-x)``, and gep with index 0.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.module import Constant, Function, Instruction, Module, Value
from repro.ir.passes.common import erase_instructions, replace_all_uses


def _is_const(v: Value, value: int) -> bool:
    return isinstance(v, Constant) and v.value == value


def _simplify(instr: Instruction) -> Optional[Value]:
    op = instr.opcode
    if op == "add":
        a, b = instr.operands
        if _is_const(b, 0):
            return a
        if _is_const(a, 0):
            return b
    elif op == "sub":
        a, b = instr.operands
        if _is_const(b, 0):
            return a
        # -(-x) → x : sub(0, sub(0, x))
        if (
            _is_const(a, 0)
            and isinstance(b, Instruction)
            and b.opcode == "sub"
            and _is_const(b.operands[0], 0)
        ):
            return b.operands[1]
    elif op == "mul":
        a, b = instr.operands
        if _is_const(b, 1):
            return a
        if _is_const(a, 1):
            return b
        if _is_const(a, 0) or _is_const(b, 0):
            return Constant(0, instr.type)
    elif op == "sdiv":
        a, b = instr.operands
        if _is_const(b, 1):
            return a
    elif op in ("xor", "or"):
        a, b = instr.operands
        if _is_const(b, 0):
            return a
        if _is_const(a, 0):
            return b
    elif op in ("shl", "ashr"):
        a, b = instr.operands
        if _is_const(b, 0):
            return a
    elif op == "gep":
        ptr, idx = instr.operands
        if _is_const(idx, 0):
            return ptr
    return None


def instcombine(module: Module) -> int:
    """Apply identities until fixpoint; returns instructions simplified."""
    total = 0
    for fn in module.defined_functions():
        changed = True
        while changed:
            changed = False
            replacement: Dict[int, Value] = {}
            dead = []
            for blk in fn.blocks:
                for instr in blk.instructions:
                    simpler = _simplify(instr)
                    if simpler is not None:
                        replacement[id(instr)] = simpler
                        dead.append(instr)
            if replacement:
                replace_all_uses(fn, replacement)
                erase_instructions(fn, dead)
                total += len(dead)
                changed = True
    return total
