"""Optimization pipelines: the -O0 / -O1 / -O2 / -O3 / -Oz compositions.

Pipeline design mirrors the observable behaviour the paper relies on:

* O0 — nothing: alloca/load/store soup, maximal source fidelity.
* O1 — mem2reg + scalar cleanups: SSA form, smaller and canonical.
* O2 — O1 plus inlining: call structure changes.
* O3 — O2 plus loop peeling: control flow restructured aggressively, which
  is what makes higher -O binaries decompile with the largest drift (RQ2).
* Oz — O1 plus *size-limited* inlining: optimize for size.

Each level is a *named sequence* of individual passes rather than one
opaque function, so :func:`optimize` can re-verify the module after every
pass (``verify=True``, the staged pipeline's debug flag) and a broken
transformation is attributed to the exact pass that produced it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.ir.module import Module
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.inline import inline_functions
from repro.ir.passes.instcombine import instcombine
from repro.ir.passes.mem2reg import mem2reg
from repro.ir.passes.peel import peel_loops
from repro.ir.passes.simplifycfg import simplify_cfg
from repro.ir.verifier import VerificationError, verify_all

#: One pipeline entry: (pass name, in-place module transformation).
Pass = Tuple[str, Callable[[Module], None]]


def _inline(max_callee_size: int) -> Pass:
    return (
        f"inline<={max_callee_size}",
        lambda module: inline_functions(module, max_callee_size=max_callee_size),
    )


def _peel(max_loop_size: int) -> Pass:
    return (
        f"peel<={max_loop_size}",
        lambda module: peel_loops(module, max_loop_size=max_loop_size),
    )


_SCALAR_CLEANUP: List[Pass] = [
    ("mem2reg", mem2reg),
    ("constfold", constant_fold),
    ("instcombine", instcombine),
    ("dce", dead_code_elimination),
    ("simplifycfg", simplify_cfg),
    ("constfold2", constant_fold),
    ("dce2", dead_code_elimination),
]

#: Level → ordered pass sequence.  Key set doubles as the valid-level
#: enumeration everywhere (`sorted(OPT_LEVELS)` in CLI help and tests).
OPT_LEVELS: Dict[str, List[Pass]] = {
    "O0": [],
    "O1": list(_SCALAR_CLEANUP),
    "O2": [_inline(40)] + list(_SCALAR_CLEANUP),
    "O3": [_inline(80), _peel(60)] + list(_SCALAR_CLEANUP),
    "Oz": [_inline(12)] + list(_SCALAR_CLEANUP),
}


def passes_for(level: str) -> List[Pass]:
    """The named pass sequence one level runs, in order."""
    if level not in OPT_LEVELS:
        raise ValueError(
            f"unknown optimization level {level!r}; options: {sorted(OPT_LEVELS)}"
        )
    return list(OPT_LEVELS[level])


def optimize(module: Module, level: str = "O0", verify: bool = False) -> Module:
    """Run the named pipeline in place and return the module.

    With ``verify=True`` the full verifier (structural + dataflow) runs
    after every pass; a violation raises :class:`VerificationError`
    naming the pass that introduced it.
    """
    for name, fn in passes_for(level):
        fn(module)
        if verify:
            verify_all(module, context=f"after pass {name!r} ({level})")
    return module
