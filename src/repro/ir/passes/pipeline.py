"""Optimization pipelines: the -O0 / -O1 / -O2 / -O3 / -Oz compositions.

Pipeline design mirrors the observable behaviour the paper relies on:

* O0 — nothing: alloca/load/store soup, maximal source fidelity.
* O1 — mem2reg + scalar cleanups: SSA form, smaller and canonical.
* O2 — O1 plus inlining: call structure changes.
* O3 — O2 plus loop peeling: control flow restructured aggressively, which
  is what makes higher -O binaries decompile with the largest drift (RQ2).
* Oz — O1 plus *size-limited* inlining: optimize for size.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ir.module import Module
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.inline import inline_functions
from repro.ir.passes.instcombine import instcombine
from repro.ir.passes.mem2reg import mem2reg
from repro.ir.passes.peel import peel_loops
from repro.ir.passes.simplifycfg import simplify_cfg


def _scalar_cleanup(module: Module) -> None:
    mem2reg(module)
    constant_fold(module)
    instcombine(module)
    dead_code_elimination(module)
    simplify_cfg(module)
    constant_fold(module)
    dead_code_elimination(module)


def _o0(module: Module) -> None:
    """No optimization."""


def _o1(module: Module) -> None:
    _scalar_cleanup(module)


def _o2(module: Module) -> None:
    inline_functions(module, max_callee_size=40)
    _scalar_cleanup(module)


def _o3(module: Module) -> None:
    inline_functions(module, max_callee_size=80)
    peel_loops(module, max_loop_size=60)
    _scalar_cleanup(module)


def _oz(module: Module) -> None:
    inline_functions(module, max_callee_size=12)
    _scalar_cleanup(module)


OPT_LEVELS: Dict[str, Callable[[Module], None]] = {
    "O0": _o0,
    "O1": _o1,
    "O2": _o2,
    "O3": _o3,
    "Oz": _oz,
}


def optimize(module: Module, level: str = "O0") -> Module:
    """Run the named pipeline in place and return the module."""
    if level not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}; options: {sorted(OPT_LEVELS)}")
    OPT_LEVELS[level](module)
    return module
