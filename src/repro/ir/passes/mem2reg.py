"""mem2reg: promote scalar stack slots to SSA registers.

Implements the lazy-phi SSA construction of Braun et al. (CC 2013) on a
complete CFG: per-block last-store tracking, recursive start-of-block value
lookup with placeholder phis to break loop cycles, and trivial-phi removal.

Promotable allocas are scalar (no element count) and used only as the
direct pointer of loads and stores — exactly LLVM's criterion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.module import BasicBlock, Constant, Function, Instruction, Module, Value
from repro.ir.passes.common import erase_instructions, replace_all_uses
from repro.ir.types import PtrType

_NO_STORE = object()


def _promotable_allocas(fn: Function) -> List[Instruction]:
    """Scalar allocas whose only uses are load/store-pointer positions."""
    allocas = [
        i for i in fn.instructions() if i.opcode == "alloca" and not i.operands
    ]
    bad = set()
    for blk in fn.blocks:
        for instr in blk.instructions:
            for pos, op in enumerate(instr.operands):
                if not (isinstance(op, Instruction) and op.opcode == "alloca"):
                    continue
                ok = (instr.opcode == "load" and pos == 0) or (
                    instr.opcode == "store" and pos == 1
                )
                if not ok:
                    bad.add(id(op))
    return [a for a in allocas if id(a) not in bad]


def mem2reg(module: Module) -> int:
    """Promote allocas in every defined function; returns number promoted."""
    total = 0
    for fn in module.defined_functions():
        total += _promote_function(fn)
    return total


def _promote_function(fn: Function) -> int:
    allocas = _promotable_allocas(fn)
    if not allocas:
        return 0
    alloca_ids = {id(a) for a in allocas}
    elem_types = {id(a): a.type.element for a in allocas}
    preds = fn.predecessors()
    entry = fn.entry

    # ---- phase 1: static per-block scan -------------------------------
    # last_store[(var_id, block)] = raw stored operand (may be a load that
    # phase 2 replaces; phase 3 resolves transitively).
    last_store: Dict[Tuple[int, BasicBlock], Value] = {}
    for blk in fn.blocks:
        for instr in blk.instructions:
            if instr.opcode == "store" and id(instr.operands[1]) in alloca_ids:
                last_store[(id(instr.operands[1]), blk)] = instr.operands[0]

    # ---- phase 2: value threading with lazy phis -----------------------
    start_def: Dict[Tuple[int, BasicBlock], Value] = {}
    new_phis: List[Instruction] = []
    replacement: Dict[int, Value] = {}

    def start_val(var_id: int, blk: BasicBlock) -> Value:
        key = (var_id, blk)
        if key in start_def:
            return start_def[key]
        ps = preds[blk]
        if blk is entry or not ps:
            val: Value = Constant(0, elem_types[var_id])
            start_def[key] = val
            return val
        if len(ps) == 1:
            # No memo needed: any lookup cycle must pass through a
            # multi-pred block, whose placeholder phi (below) breaks it.
            val = end_val(var_id, ps[0])
            start_def[key] = val
            return val
        phi = Instruction("phi", [], elem_types[var_id], blocks=[])
        phi.parent = blk
        blk.instructions.insert(0, phi)
        new_phis.append(phi)
        start_def[key] = phi
        incoming = [(end_val(var_id, p), p) for p in ps]
        phi.operands = [v for v, _ in incoming]
        phi.blocks = [p for _, p in incoming]
        return phi

    def end_val(var_id: int, blk: BasicBlock) -> Value:
        stored = last_store.get((var_id, blk), _NO_STORE)
        if stored is not _NO_STORE:
            return stored
        return start_val(var_id, blk)

    dead: List[Instruction] = list(allocas)
    for blk in fn.blocks:
        running: Dict[int, Value] = {}
        # Snapshot: start_val may insert placeholder phis at the front of
        # this very block while we iterate.
        for instr in list(blk.instructions):
            if instr.opcode == "load" and id(instr.operands[0]) in alloca_ids:
                var_id = id(instr.operands[0])
                val = running.get(var_id)
                if val is None:
                    val = start_val(var_id, blk)
                replacement[id(instr)] = val
                dead.append(instr)
            elif instr.opcode == "store" and id(instr.operands[1]) in alloca_ids:
                running[id(instr.operands[1])] = instr.operands[0]
                dead.append(instr)

    # ---- phase 3: resolve replacements transitively --------------------
    replace_all_uses(fn, replacement)

    # ---- phase 4: trivial phi elimination -----------------------------
    changed = True
    while changed:
        changed = False
        for phi in list(new_phis):
            values = [v for v in phi.operands if v is not phi]
            if not values:
                continue
            if len({id(v) if not isinstance(v, Constant) else ("c", v.value, str(v.type)) for v in values}) == 1:
                replace_all_uses(fn, {id(phi): values[0]})
                erase_instructions(fn, [phi])
                new_phis.remove(phi)
                changed = True

    erase_instructions(fn, dead)
    return len(allocas)
