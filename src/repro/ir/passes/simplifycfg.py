"""CFG simplification: unreachable removal, constant branches, block merging."""

from __future__ import annotations

from typing import List

from repro.ir.module import BasicBlock, Constant, Function, Instruction, Module
from repro.ir.passes.common import phi_incoming_replace


def simplify_cfg(module: Module) -> int:
    """Run all CFG cleanups to fixpoint; returns a change count."""
    total = 0
    for fn in module.defined_functions():
        changed = True
        while changed:
            changed = False
            changed |= _fold_constant_branches(fn) > 0
            changed |= _remove_unreachable(fn) > 0
            changed |= _merge_straight_line(fn) > 0
            total += int(changed)
    return total


def _fold_constant_branches(fn: Function) -> int:
    """condbr on a constant → unconditional br (dead edge drops from phis)."""
    count = 0
    for blk in fn.blocks:
        term = blk.terminator
        if term is None or term.opcode != "condbr":
            continue
        cond = term.operands[0]
        if not isinstance(cond, Constant):
            continue
        taken = term.blocks[0] if cond.value else term.blocks[1]
        dropped = term.blocks[1] if cond.value else term.blocks[0]
        blk.instructions[-1] = Instruction("br", [], blocks=[taken])
        blk.instructions[-1].parent = blk
        if dropped is not taken:
            phi_incoming_replace(dropped, blk, None)
        count += 1
    return count


def _remove_unreachable(fn: Function) -> int:
    """Delete blocks not reachable from the entry; fix phis of survivors."""
    reachable = fn.reachable_blocks()
    doomed = [b for b in fn.blocks if b not in reachable]
    if not doomed:
        return 0
    doomed_set = set(doomed)
    for blk in fn.blocks:
        if blk in doomed_set:
            continue
        for phi in blk.phis():
            keep = [
                (v, b)
                for v, b in zip(phi.operands, phi.blocks)
                if b not in doomed_set
            ]
            phi.operands = [v for v, _ in keep]
            phi.blocks = [b for _, b in keep]
    fn.blocks = [b for b in fn.blocks if b not in doomed_set]
    return len(doomed)


def _merge_straight_line(fn: Function) -> int:
    """Merge B → C when B ends ``br C``, C has only predecessor B, no phis."""
    preds = fn.predecessors()
    merged = 0
    for blk in list(fn.blocks):
        if blk not in set(fn.blocks):
            continue
        term = blk.terminator
        if term is None or term.opcode != "br":
            continue
        succ = term.blocks[0]
        if succ is blk or succ not in preds:
            continue
        if len(preds[succ]) != 1 or succ.phis():
            continue
        if succ is fn.entry:
            continue
        # splice succ's instructions into blk
        blk.instructions.pop()  # the br
        for instr in succ.instructions:
            instr.parent = blk
            blk.instructions.append(instr)
        # successors of succ now see blk as predecessor
        for nxt in succ.successors():
            phi_incoming_replace(nxt, succ, blk)
        fn.blocks.remove(succ)
        preds = fn.predecessors()
        merged += 1
    return merged
