"""Function inlining: splice small callee bodies into call sites.

Runs on pre-mem2reg IR (the pipelines schedule it first), where values never
cross block boundaries except through memory — which makes the transform a
pure block-splice plus a return phi.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.module import BasicBlock, Function, Instruction, Module, Value
from repro.ir.passes.common import clone_blocks, phi_incoming_replace
from repro.ir.types import VOID


def _is_self_recursive(fn: Function) -> bool:
    return any(
        i.opcode == "call" and i.extra["callee"] == fn.name
        for i in fn.instructions()
    )


def inline_functions(module: Module, max_callee_size: int = 40) -> int:
    """Inline calls to small defined callees; returns call sites inlined.

    ``max_callee_size`` is the instruction-count threshold — the knob the
    Oz pipeline turns down to stay size-conscious.
    """
    inlined = 0
    candidates = {
        f.name: f
        for f in module.defined_functions()
        if f.size() <= max_callee_size and not _is_self_recursive(f)
    }
    for fn in module.defined_functions():
        again = True
        rounds = 0
        while again and rounds < 8:
            again = False
            rounds += 1
            for blk in list(fn.blocks):
                site = _find_call_site(blk, candidates, fn)
                if site is not None:
                    _inline_at(fn, blk, site, candidates[site.extra["callee"]])
                    inlined += 1
                    again = True
                    break
    return inlined


def _find_call_site(blk: BasicBlock, candidates: Dict[str, Function], fn: Function) -> Optional[Instruction]:
    for instr in blk.instructions:
        if instr.opcode != "call":
            continue
        callee = instr.extra["callee"]
        if callee in candidates and callee != fn.name:
            return instr
    return None


def _inline_at(fn: Function, blk: BasicBlock, call: Instruction, callee: Function) -> None:
    call_pos = blk.instructions.index(call)

    # Split: tail goes to a continuation block.
    cont = fn.new_block(f"{blk.label}.cont")
    tail = blk.instructions[call_pos + 1 :]
    blk.instructions = blk.instructions[:call_pos]
    for instr in tail:
        instr.parent = cont
        cont.instructions.append(instr)
    # successors' phis must now name the continuation as predecessor
    for nxt in cont.successors():
        phi_incoming_replace(nxt, blk, cont)

    # Clone the callee body with args bound to the call operands.
    value_map: Dict[int, Value] = {
        id(arg): op for arg, op in zip(callee.args, call.operands)
    }
    block_map, value_map = clone_blocks(fn, callee.blocks, value_map, f"inl{call.uid}")

    # Rewire: caller block branches into the cloned entry.
    entry_clone = block_map[callee.entry]
    br = Instruction("br", [], blocks=[entry_clone])
    br.parent = blk
    blk.instructions.append(br)

    # Each cloned ret becomes a branch to the continuation.
    ret_values: List = []
    ret_blocks: List[BasicBlock] = []
    for orig_blk in callee.blocks:
        clone = block_map[orig_blk]
        term = clone.terminator
        if term is not None and term.opcode == "ret":
            if term.operands:
                ret_values.append(term.operands[0])
            ret_blocks.append(clone)
            clone.instructions[-1] = Instruction("br", [], blocks=[cont])
            clone.instructions[-1].parent = clone

    # Replace uses of the call's result.
    if call.type != VOID and ret_values:
        if len(ret_values) == 1:
            result: Value = ret_values[0]
        else:
            phi = Instruction(
                "phi", ret_values, call.type, blocks=ret_blocks
            )
            phi.parent = cont
            cont.instructions.insert(0, phi)
            result = phi
        for b2 in fn.blocks:
            for instr in b2.instructions:
                instr.replace_operand(call, result)
