"""Shared pass utilities: use counting, operand rewriting, block cloning."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.module import BasicBlock, Constant, Function, Instruction, Value


def replace_all_uses(fn: Function, mapping: Dict[int, Value]) -> None:
    """Rewrite every operand through ``mapping`` (id(old) → new), transitively."""

    def resolve(v: Value) -> Value:
        seen = set()
        while id(v) in mapping and id(v) not in seen:
            seen.add(id(v))
            v = mapping[id(v)]
        return v

    for blk in fn.blocks:
        for instr in blk.instructions:
            instr.operands = [resolve(op) for op in instr.operands]


def use_counts(fn: Function) -> Dict[int, int]:
    """Number of operand references per instruction id."""
    counts: Dict[int, int] = {}
    for blk in fn.blocks:
        for instr in blk.instructions:
            for op in instr.operands:
                if isinstance(op, Instruction):
                    counts[id(op)] = counts.get(id(op), 0) + 1
    return counts


def erase_instructions(fn: Function, dead: Iterable[Instruction]) -> int:
    """Remove the given instructions from their blocks; returns count removed."""
    dead_ids = {id(d) for d in dead}
    removed = 0
    for blk in fn.blocks:
        before = len(blk.instructions)
        blk.instructions = [i for i in blk.instructions if id(i) not in dead_ids]
        removed += before - len(blk.instructions)
    return removed


def clone_blocks(
    fn: Function,
    blocks: List[BasicBlock],
    value_map: Dict[int, Value],
    label_suffix: str,
) -> Tuple[Dict[BasicBlock, BasicBlock], Dict[int, Value]]:
    """Clone a set of blocks into ``fn``.

    ``value_map`` seeds the operand remapping (e.g. callee args → call
    operands).  Branch targets *inside* the cloned set are remapped to the
    clones; targets outside are preserved.  Returns (block_map, value_map).
    """
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for blk in blocks:
        clone = fn.new_block(f"{blk.label}.{label_suffix}")
        block_map[blk] = clone

    def mapped_value(v: Value) -> Value:
        return value_map.get(id(v), v)

    for blk in blocks:
        clone = block_map[blk]
        for instr in blk.instructions:
            new = Instruction(
                instr.opcode,
                operands=[mapped_value(op) for op in instr.operands],
                type=instr.type,
                blocks=[block_map.get(b, b) for b in instr.blocks],
                extra=dict(instr.extra),
            )
            clone.append(new)
            value_map[id(instr)] = new
    # Second pass: operands that referred to instructions cloned *later*
    # (forward refs only happen via phis) need remapping again.
    for blk in blocks:
        for instr in block_map[blk].instructions:
            instr.operands = [mapped_value(op) for op in instr.operands]
    return block_map, value_map


def phi_incoming_replace(block: BasicBlock, old_pred: BasicBlock, new_pred: Optional[BasicBlock]) -> None:
    """Rewrite or drop the incoming edge ``old_pred`` in every phi of ``block``."""
    for phi in block.phis():
        if new_pred is None:
            keep = [
                (v, b) for v, b in zip(phi.operands, phi.blocks) if b is not old_pred
            ]
            phi.operands = [v for v, _ in keep]
            phi.blocks = [b for _, b in keep]
        else:
            phi.blocks = [new_pred if b is old_pred else b for b in phi.blocks]
