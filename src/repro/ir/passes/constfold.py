"""Constant folding: evaluate all-constant binops, icmps and casts."""

from __future__ import annotations

from typing import Dict

from repro.ir.module import Constant, Function, Instruction, Module, Value
from repro.ir.passes.common import erase_instructions, replace_all_uses
from repro.ir.types import I1, IntType


def _wrap(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value >= (1 << (bits - 1)) else value


def _fold_binary(op: str, a: int, b: int, bits: int):
    if op == "add":
        return _wrap(a + b, bits)
    if op == "sub":
        return _wrap(a - b, bits)
    if op == "mul":
        return _wrap(a * b, bits)
    if op == "sdiv":
        if b == 0:
            return None  # preserve the trap
        q = abs(a) // abs(b)
        return _wrap(-q if (a < 0) != (b < 0) else q, bits)
    if op == "srem":
        if b == 0:
            return None
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return _wrap(a - q * b, bits)
    if op == "and":
        return _wrap(a & b, bits)
    if op == "or":
        return _wrap(a | b, bits)
    if op == "xor":
        return _wrap(a ^ b, bits)
    if op == "shl":
        return _wrap(a << (b % bits), bits)
    if op == "ashr":
        return _wrap(a >> (b % bits), bits)
    return None


_PREDS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_BINOPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr")


def constant_fold(module: Module) -> int:
    """Fold constants in every function; returns instructions folded."""
    total = 0
    for fn in module.defined_functions():
        total += _fold_function(fn)
    return total


def _fold_function(fn: Function) -> int:
    folded = 0
    changed = True
    while changed:
        changed = False
        replacement: Dict[int, Value] = {}
        dead = []
        for blk in fn.blocks:
            for instr in blk.instructions:
                result = _try_fold(instr)
                if result is not None:
                    replacement[id(instr)] = result
                    dead.append(instr)
        if replacement:
            replace_all_uses(fn, replacement)
            erase_instructions(fn, dead)
            folded += len(dead)
            changed = True
    return folded


def _try_fold(instr: Instruction):
    op = instr.opcode
    if op in _BINOPS:
        a, b = instr.operands
        if isinstance(a, Constant) and isinstance(b, Constant):
            bits = instr.type.bits if isinstance(instr.type, IntType) else 64
            val = _fold_binary(op, a.value, b.value, bits)
            if val is not None:
                return Constant(val, instr.type)
    elif op == "icmp":
        a, b = instr.operands
        if isinstance(a, Constant) and isinstance(b, Constant):
            return Constant(1 if _PREDS[instr.extra["pred"]](a.value, b.value) else 0, I1)
    elif op in ("zext", "sext", "trunc"):
        (a,) = instr.operands
        if isinstance(a, Constant):
            if op == "zext":
                src_bits = a.type.bits
                return Constant(a.value & ((1 << src_bits) - 1), instr.type)
            return Constant(_wrap(a.value, instr.type.bits), instr.type)
    elif op == "phi":
        vals = [v for v in instr.operands if v is not instr]
        keys = set()
        for v2 in vals:
            if isinstance(v2, Constant):
                keys.add(("c", v2.value, str(v2.type)))
            else:
                keys.add(id(v2))
        if vals and len(keys) == 1:
            return vals[0]
    return None
