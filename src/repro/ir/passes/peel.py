"""Loop peeling: clone the first iteration of natural loops.

The O3 pipeline's "aggressive control-flow tuning".  Runs on pre-mem2reg IR
(loop state still lives in memory), so no SSA values cross the peeled
boundary and the transform reduces to block cloning plus branch rewiring.

Loop discovery is the textbook construction: dominators by iterative
dataflow, back edges (tail → head where head dominates tail), natural loop
bodies by backward reachability from the tail.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.module import BasicBlock, Function, Instruction, Module, Value
from repro.ir.passes.common import clone_blocks, phi_incoming_replace


def compute_dominators(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Dominator sets via the classic iterative bitvector algorithm."""
    blocks = [b for b in fn.blocks if b in fn.reachable_blocks()]
    preds = fn.predecessors()
    entry = fn.entry
    dom: Dict[BasicBlock, Set[BasicBlock]] = {b: set(blocks) for b in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for blk in blocks:
            if blk is entry:
                continue
            ps = [p for p in preds[blk] if p in dom]
            new = set(blocks)
            for p in ps:
                new &= dom[p]
            new.add(blk)
            if new != dom[blk]:
                dom[blk] = new
                changed = True
    return dom


def find_natural_loops(fn: Function) -> List[Dict]:
    """All natural loops as dicts {header, body (set incl. header), latches}."""
    dom = compute_dominators(fn)
    preds = fn.predecessors()
    loops: Dict[BasicBlock, Dict] = {}
    for blk in fn.blocks:
        if blk not in dom:
            continue
        for succ in blk.successors():
            if succ in dom.get(blk, set()):  # back edge blk → succ
                header = succ
                body: Set[BasicBlock] = {header, blk}
                stack = [blk]
                while stack:
                    node = stack.pop()
                    if node is header:
                        continue
                    for p in preds[node]:
                        if p not in body:
                            body.add(p)
                            stack.append(p)
                entry = loops.setdefault(
                    header, {"header": header, "body": set(), "latches": []}
                )
                entry["body"] |= body
                entry["latches"].append(blk)
    return list(loops.values())


def peel_loops(module: Module, max_loop_size: int = 60) -> int:
    """Peel one iteration off each (small, phi-free) natural loop."""
    peeled = 0
    for fn in module.defined_functions():
        peeled += _peel_function(fn, max_loop_size)
    return peeled


def _peel_function(fn: Function, max_loop_size: int) -> int:
    count = 0
    # Snapshot: peeling adds blocks; we only peel the loops found up front,
    # and skip nested re-discovery within one pass invocation.
    for loop in find_natural_loops(fn):
        header: BasicBlock = loop["header"]
        body: Set[BasicBlock] = loop["body"]
        if sum(len(b.instructions) for b in body) > max_loop_size:
            continue
        # Pre-mem2reg restriction: header must be phi-free (short-circuit
        # phis inside the body clone safely); values defined in the loop
        # must not be used outside it.
        if header.phis():
            continue
        inside_ids = {id(i) for b in body for i in b.instructions}
        escapes = False
        for blk in fn.blocks:
            if blk in body:
                continue
            for instr in blk.instructions:
                if any(id(op) in inside_ids for op in instr.operands):
                    escapes = True
                    break
            if escapes:
                break
        if escapes:
            continue

        preds = fn.predecessors()
        outside_preds = [p for p in preds[header] if p not in body]
        if len(outside_preds) != 1:
            continue
        preheader = outside_preds[0]

        # Clone the whole loop.
        ordered_body = [b for b in fn.blocks if b in body]
        value_map: Dict[int, Value] = {}
        block_map, _ = clone_blocks(fn, ordered_body, value_map, f"peel{count}")

        # Cloned latches jump to the ORIGINAL header (second iteration on).
        for latch in loop["latches"]:
            clone = block_map[latch]
            term = clone.terminator
            term.blocks = [
                header if b is block_map.get(header) else b for b in term.blocks
            ]

        # Preheader enters the peeled copy instead of the loop.
        pre_term = preheader.terminator
        pre_term.blocks = [
            block_map[header] if b is header else b for b in pre_term.blocks
        ]
        # Exit blocks gain a new predecessor (the cloned header/exits); any
        # phis there need an incoming entry per cloned predecessor.
        for orig in ordered_body:
            clone = block_map[orig]
            for succ in orig.successors():
                if succ in body:
                    continue
                for phi in succ.phis():
                    for v, b in list(zip(phi.operands, phi.blocks)):
                        if b is orig:
                            phi.operands.append(value_map.get(id(v), v))
                            phi.blocks.append(clone)
        count += 1
    return count
