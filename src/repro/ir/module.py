"""IR object model: Module → Function → BasicBlock → Instruction.

A compact SSA-style IR with the instruction families the paper's pipeline
relies on (alloca/load/store/binary ops/icmp/br/phi/call/ret/gep/casts).
Instructions are :class:`Value` objects that other instructions reference
directly as operands; the printer assigns ``%N`` names on demand.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.ir.types import I1, I32, I64, LABEL, VOID, IRType, PtrType

BINARY_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr")
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")
TERMINATORS = ("br", "condbr", "ret", "unreachable")


class Value:
    """Anything that can be an operand: constants, arguments, instructions."""

    type: IRType

    def short(self) -> str:  # pragma: no cover - overridden
        """Operand spelling (``%3``, ``42``, ``%x``)."""
        raise NotImplementedError


class Constant(Value):
    """Integer constant of a given type."""

    __slots__ = ("type", "value")

    def __init__(self, value: int, type: IRType = I32):  # noqa: D107
        self.value = int(value)
        self.type = type

    def short(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value}: {self.type})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash(("const", self.value, str(self.type)))


class Argument(Value):
    """A function parameter."""

    __slots__ = ("type", "name", "index")

    def __init__(self, name: str, type: IRType, index: int):  # noqa: D107
        self.name = name
        self.type = type
        self.index = index

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"Argument(%{self.name}: {self.type})"


class Instruction(Value):
    """A single IR operation.

    ``opcode`` selects the family; ``operands`` are :class:`Value`s.
    Control-flow operands (branch targets) live in ``blocks``.  ``extra``
    carries opcode-specific data (icmp predicate, callee name, phi incoming
    blocks).
    """

    __slots__ = ("opcode", "operands", "blocks", "type", "extra", "parent", "uid")

    _next_uid = 0

    def __init__(
        self,
        opcode: str,
        operands: Sequence[Value] = (),
        type: IRType = VOID,
        blocks: Sequence["BasicBlock"] = (),
        extra: Optional[dict] = None,
    ):  # noqa: D107
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.blocks: List[BasicBlock] = list(blocks)
        self.type = type
        self.extra = extra or {}
        self.parent: Optional[BasicBlock] = None
        self.uid = Instruction._next_uid
        Instruction._next_uid += 1

    # ------------------------------------------------------------- queries
    @property
    def is_terminator(self) -> bool:
        """True for br/condbr/ret/unreachable."""
        return self.opcode in TERMINATORS

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction cannot be removed even when unused."""
        return self.opcode in ("store", "call", "br", "condbr", "ret", "unreachable")

    def short(self) -> str:
        return f"%{self.uid}"

    def replace_operand(self, old: Value, new: Value) -> None:
        """Substitute every occurrence of ``old`` in the operand list."""
        self.operands = [new if op is old else op for op in self.operands]

    def __repr__(self) -> str:
        return f"Instruction({self.opcode} -> {self.type}, uid={self.uid})"


class BasicBlock:
    """A label plus a straight-line instruction sequence ending in a terminator."""

    __slots__ = ("label", "instructions", "parent")

    def __init__(self, label: str):  # noqa: D107
        self.label = label
        self.instructions: List[Instruction] = []
        self.parent: Optional["Function"] = None

    def append(self, instr: Instruction) -> Instruction:
        """Add an instruction at the end."""
        instr.parent = self
        self.instructions.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final instruction if it is a terminator."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        """Blocks this one can branch to."""
        term = self.terminator
        return list(term.blocks) if term is not None else []

    def phis(self) -> List[Instruction]:
        """Leading phi instructions."""
        out = []
        for ins in self.instructions:
            if ins.opcode != "phi":
                break
            out.append(ins)
        return out

    def __repr__(self) -> str:
        return f"BasicBlock({self.label}, {len(self.instructions)} instrs)"


class Function:
    """A function: signature plus a CFG of basic blocks.

    ``is_declaration`` marks externals (Java runtime/library calls keep no
    body in the module — the JLang-vs-Clang asymmetry the paper leans on).
    """

    def __init__(
        self,
        name: str,
        arg_types: Sequence[IRType],
        arg_names: Sequence[str],
        return_type: IRType,
        is_declaration: bool = False,
    ):  # noqa: D107
        self.name = name
        self.args = [Argument(n, t, i) for i, (n, t) in enumerate(zip(arg_names, arg_types))]
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self.is_declaration = is_declaration
        self._label_counter = 0

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create and append a fresh labelled block."""
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        blk = BasicBlock(label)
        blk.parent = self
        self.blocks.append(blk)
        return blk

    @property
    def entry(self) -> BasicBlock:
        """The entry block."""
        return self.blocks[0]

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for blk in self.blocks:
            yield from blk.instructions

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map each block to the blocks that branch to it."""
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for blk in self.blocks:
            for succ in blk.successors():
                preds[succ].append(blk)
        return preds

    def reachable_blocks(self) -> Set[BasicBlock]:
        """Blocks reachable from the entry."""
        seen: Set[BasicBlock] = set()
        stack = [self.entry] if self.blocks else []
        while stack:
            blk = stack.pop()
            if blk in seen:
                continue
            seen.add(blk)
            stack.extend(blk.successors())
        return seen

    def size(self) -> int:
        """Total instruction count."""
        return sum(len(b.instructions) for b in self.blocks)

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"Function({kind} {self.name}, {len(self.blocks)} blocks)"


class Module:
    """A translation unit: an ordered collection of functions plus metadata.

    ``source_language`` records the producing front-end ("c", "cpp", "java"
    or "decompiler"), which downstream statistics use.
    """

    def __init__(self, name: str = "module", source_language: str = ""):  # noqa: D107
        self.name = name
        self.source_language = source_language
        self.functions: List[Function] = []

    def add(self, fn: Function) -> Function:
        """Append a function (no duplicate names)."""
        if any(f.name == fn.name for f in self.functions):
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions.append(fn)
        return fn

    def get(self, name: str) -> Function:
        """Look up a function by name."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r} in module {self.name}")

    def has(self, name: str) -> bool:
        """True if a function with this name exists."""
        return any(f.name == name for f in self.functions)

    def defined_functions(self) -> List[Function]:
        """Functions with bodies (excludes declarations)."""
        return [f for f in self.functions if not f.is_declaration]

    def size(self) -> int:
        """Total instruction count over defined functions."""
        return sum(f.size() for f in self.defined_functions())

    def __repr__(self) -> str:
        return f"Module({self.name}, {len(self.functions)} functions)"
