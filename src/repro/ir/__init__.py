"""``repro.ir`` — the LLVM-IR substitute: typed SSA IR, lowering, passes.

Pipeline position: ``repro.lang`` ASTs are lowered here (per-language
front-ends), optimized by :mod:`repro.ir.passes` pipelines (O0..Oz), printed
with LLVM-like syntax for node features, and consumed by
:mod:`repro.graphs` for ProGraML-style graph construction and by
:mod:`repro.binary` for code generation.
"""

from repro.ir.builder import IRBuilder
from repro.ir.interp import IRInterpError, IRInterpreter, Pointer, run_module
from repro.ir.lowering import (
    ClangLowering,
    CppLowering,
    JLangLowering,
    LoweringError,
    lower_program,
)
from repro.ir.module import (
    Argument,
    BasicBlock,
    Constant,
    Function,
    Instruction,
    Module,
    Value,
)
from repro.ir.printer import instruction_text, print_function, print_module
from repro.ir.types import I1, I32, I64, VOID, IntType, IRType, PtrType
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "IRBuilder",
    "IRInterpreter",
    "IRInterpError",
    "Pointer",
    "run_module",
    "ClangLowering",
    "CppLowering",
    "JLangLowering",
    "LoweringError",
    "lower_program",
    "Module",
    "Function",
    "BasicBlock",
    "Instruction",
    "Constant",
    "Argument",
    "Value",
    "print_module",
    "print_function",
    "instruction_text",
    "IRType",
    "IntType",
    "PtrType",
    "I1",
    "I32",
    "I64",
    "VOID",
    "verify_module",
    "verify_function",
    "VerificationError",
]
