"""Textual IR printer with LLVM-like syntax.

The printed text feeds two consumers: human inspection, and the ProGraML-
style graph builder, whose node features are exactly these instruction
strings (``full_text``) or their opcodes (``text``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.module import BasicBlock, Constant, Function, Instruction, Module, Value
from repro.ir.types import VOID


class Namer:
    """Assigns stable ``%N`` names to instructions within one function."""

    def __init__(self) -> None:  # noqa: D107
        self._names: Dict[int, str] = {}
        self._counter = 0

    def name(self, value: Value) -> str:
        """Operand spelling for any value."""
        if isinstance(value, Constant):
            return str(value.value)
        if isinstance(value, Instruction):
            if id(value) not in self._names:
                self._names[id(value)] = f"%{self._counter}"
                self._counter += 1
            return self._names[id(value)]
        # Argument
        return value.short()

    def assign_all(self, fn: Function) -> None:
        """Pre-assign names in program order so output reads top-down."""
        for instr in fn.instructions():
            if instr.type != VOID:
                self.name(instr)


def instruction_text(instr: Instruction, namer: Namer) -> str:
    """Render one instruction as LLVM-like text (the ProGraML full_text)."""
    op = instr.opcode
    t = instr.type

    def n(v: Value) -> str:
        return namer.name(v)

    def typed(v: Value) -> str:
        return f"{v.type} {n(v)}"

    if op == "alloca":
        if instr.operands:
            return f"{n(instr)} = alloca {t.element}, i32 {n(instr.operands[0])}"
        return f"{n(instr)} = alloca {t.element}"
    if op == "load":
        ptr = instr.operands[0]
        return f"{n(instr)} = load {t}, {typed(ptr)}"
    if op == "store":
        val, ptr = instr.operands
        return f"store {typed(val)}, {typed(ptr)}"
    if op == "gep":
        ptr, idx = instr.operands
        return f"{n(instr)} = getelementptr {ptr.type.element}, {typed(ptr)}, {typed(idx)}"
    if op in ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr"):
        a, b = instr.operands
        return f"{n(instr)} = {op} {t} {n(a)}, {n(b)}"
    if op == "icmp":
        a, b = instr.operands
        return f"{n(instr)} = icmp {instr.extra['pred']} {a.type} {n(a)}, {n(b)}"
    if op in ("zext", "sext", "trunc", "inttoptr", "ptrtoint"):
        (a,) = instr.operands
        return f"{n(instr)} = {op} {a.type} {n(a)} to {t}"
    if op == "br":
        return f"br label %{instr.blocks[0].label}"
    if op == "condbr":
        c = instr.operands[0]
        return (
            f"br i1 {n(c)}, label %{instr.blocks[0].label}, "
            f"label %{instr.blocks[1].label}"
        )
    if op == "ret":
        if instr.operands:
            return f"ret {typed(instr.operands[0])}"
        return "ret void"
    if op == "unreachable":
        return "unreachable"
    if op == "phi":
        pairs = ", ".join(
            f"[ {n(v)}, %{b.label} ]" for v, b in zip(instr.operands, instr.blocks)
        )
        return f"{n(instr)} = phi {t} {pairs}"
    if op == "call":
        args = ", ".join(typed(a) for a in instr.operands)
        callee = instr.extra["callee"]
        if t == VOID:
            return f"call void @{callee}({args})"
        return f"{n(instr)} = call {t} @{callee}({args})"
    raise ValueError(f"cannot print opcode {op!r}")


def print_function(fn: Function) -> str:
    """Render one function definition or declaration."""
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    if fn.is_declaration:
        arg_types = ", ".join(str(a.type) for a in fn.args)
        return f"declare {fn.return_type} @{fn.name}({arg_types})"
    namer = Namer()
    namer.assign_all(fn)
    lines: List[str] = [f"define {fn.return_type} @{fn.name}({params}) {{"]
    for blk in fn.blocks:
        lines.append(f"{blk.label}:")
        for instr in blk.instructions:
            lines.append("  " + instruction_text(instr, namer))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render the whole module."""
    header = f"; ModuleID = '{module.name}'"
    if module.source_language:
        header += f"\n; source_language = {module.source_language}"
    return "\n\n".join([header] + [print_function(f) for f in module.functions]) + "\n"
