"""IR interpreter — the semantic oracle for compiled modules.

Executes a :class:`~repro.ir.module.Module` starting at ``main`` and
collects printed integers, so tests can assert
``AST interpreter == IR interpreter == binary VM`` across optimization
levels.  Pointers are (backing list, offset) pairs; external runtime
functions (Java array helpers, prints, library sorts) are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir.module import Argument, BasicBlock, Constant, Function, Instruction, Module, Value
from repro.ir.types import IntType

_PRINT_CALLEES = {
    "print_i32",
    "printf",
    "_ZNSolsEi",
    "java.io.PrintStream.println",
}


class IRInterpError(RuntimeError):
    """Raised on malformed IR, runtime traps, or step-budget exhaustion."""


@dataclass
class Pointer:
    """A pointer value: backing storage plus an element offset."""

    array: list
    offset: int = 0

    def moved(self, delta: int) -> "Pointer":
        """Pointer arithmetic."""
        return Pointer(self.array, self.offset + delta)


def _wrap(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value >= (1 << (bits - 1)) else value


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise IRInterpError("sdiv by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


class IRInterpreter:
    """Executes modules; see module docstring."""

    def __init__(self, module: Module, max_steps: int = 5_000_000):  # noqa: D107
        self.module = module
        self.output: List[int] = []
        self.max_steps = max_steps
        self._steps = 0

    def run(self, entry: str = "main", args: Optional[list] = None) -> List[int]:
        """Execute ``entry``; returns the printed integers."""
        self.output = []
        self._steps = 0
        self.call(entry, args or [])
        return self.output

    # ------------------------------------------------------------ externals
    def _external(self, name: str, args: list):
        if name in _PRINT_CALLEES:
            self.output.append(int(args[0]))
            return None
        if name == "java.newarray":
            n = int(args[0])
            if n < 0:
                raise IRInterpError("NegativeArraySizeException")
            return Pointer([0] * n, 0)
        if name == "java.arraylength":
            ptr = args[0]
            return len(ptr.array)
        if name == "java.util.Arrays.sort":
            ptr, lo, hi = args[0], int(args[1]), int(args[2])
            base = ptr.offset
            ptr.array[base + lo : base + hi] = sorted(ptr.array[base + lo : base + hi])
            return None
        if name == "java.lang.Math.max":
            return max(args)
        if name == "java.lang.Math.min":
            return min(args)
        if name == "java.lang.Math.abs":
            return abs(args[0])
        if name == "java.throw.ArrayIndexOutOfBounds":
            raise IRInterpError("ArrayIndexOutOfBoundsException")
        raise IRInterpError(f"call to unknown external {name!r}")

    # ----------------------------------------------------------------- call
    def call(self, name: str, args: list):
        """Invoke a function (defined or external) with evaluated args."""
        try:
            fn = self.module.get(name)
        except KeyError:
            return self._external(name, args)
        if fn.is_declaration:
            return self._external(name, args)
        if len(args) != len(fn.args):
            raise IRInterpError(f"{name}: arity mismatch")
        env: Dict[int, object] = {id(a): v for a, v in zip(fn.args, args)}
        block = fn.entry
        prev_block: Optional[BasicBlock] = None
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise IRInterpError("step budget exceeded")
            # Phase 1: evaluate all phis against the incoming edge at once.
            phi_values = {}
            idx = 0
            for instr in block.instructions:
                if instr.opcode != "phi":
                    break
                idx += 1
                matched = False
                for val, pred in zip(instr.operands, instr.blocks):
                    if pred is prev_block:
                        phi_values[id(instr)] = self._value(val, env)
                        matched = True
                        break
                if not matched:
                    raise IRInterpError(
                        f"phi in {block.label} has no incoming for predecessor"
                    )
            env.update(phi_values)
            # Phase 2: run the straight-line remainder.
            for instr in block.instructions[idx:]:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise IRInterpError("step budget exceeded")
                result = self._exec(instr, env)
                if instr.opcode == "ret":
                    return result
                if instr.opcode in ("br", "condbr"):
                    prev_block, block = block, result
                    break
                env[id(instr)] = result
            else:
                raise IRInterpError(f"block {block.label} has no terminator")

    # ----------------------------------------------------------- evaluation
    def _value(self, v: Value, env: Dict[int, object]):
        if isinstance(v, Constant):
            return v.value
        val = env.get(id(v), _MISSING)
        if val is _MISSING:
            raise IRInterpError(f"use of undefined value {v!r}")
        return val

    def _exec(self, instr: Instruction, env: Dict[int, object]):
        op = instr.opcode
        if op == "alloca":
            count = (
                int(self._value(instr.operands[0], env)) if instr.operands else 1
            )
            if count < 0:
                raise IRInterpError("negative alloca count")
            return Pointer([0] * count, 0)
        if op == "load":
            ptr = self._value(instr.operands[0], env)
            self._check_ptr(ptr)
            return ptr.array[ptr.offset]
        if op == "store":
            val = self._value(instr.operands[0], env)
            ptr = self._value(instr.operands[1], env)
            self._check_ptr(ptr)
            ptr.array[ptr.offset] = val
            return None
        if op == "gep":
            ptr = self._value(instr.operands[0], env)
            idx = int(self._value(instr.operands[1], env))
            return ptr.moved(idx)
        if op in ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr"):
            a = self._value(instr.operands[0], env)
            b = self._value(instr.operands[1], env)
            bits = instr.type.bits if isinstance(instr.type, IntType) else 64
            if op == "add":
                r = a + b
            elif op == "sub":
                r = a - b
            elif op == "mul":
                r = a * b
            elif op == "sdiv":
                r = _trunc_div(a, b)
            elif op == "srem":
                r = a - _trunc_div(a, b) * b if b != 0 else self._raise_div()
            elif op == "and":
                r = a & b
            elif op == "or":
                r = a | b
            elif op == "xor":
                r = a ^ b
            elif op == "shl":
                r = a << (b % bits)
            else:  # ashr
                r = a >> (b % bits)
            return _wrap(r, bits)
        if op == "icmp":
            a = self._value(instr.operands[0], env)
            b = self._value(instr.operands[1], env)
            pred = instr.extra["pred"]
            table = {
                "eq": a == b,
                "ne": a != b,
                "slt": a < b,
                "sle": a <= b,
                "sgt": a > b,
                "sge": a >= b,
            }
            return 1 if table[pred] else 0
        if op in ("zext", "trunc", "sext"):
            val = int(self._value(instr.operands[0], env))
            bits = instr.type.bits
            if op == "zext":
                src_bits = instr.operands[0].type.bits
                return val & ((1 << src_bits) - 1)
            return _wrap(val, bits)
        if op == "br":
            return instr.blocks[0]
        if op == "condbr":
            cond = self._value(instr.operands[0], env)
            return instr.blocks[0] if cond else instr.blocks[1]
        if op == "ret":
            return self._value(instr.operands[0], env) if instr.operands else None
        if op == "unreachable":
            raise IRInterpError("reached unreachable")
        if op == "call":
            args = [self._value(a, env) for a in instr.operands]
            return self.call(instr.extra["callee"], args)
        raise IRInterpError(f"unknown opcode {op!r}")

    @staticmethod
    def _raise_div():
        raise IRInterpError("srem by zero")

    @staticmethod
    def _check_ptr(ptr):
        if not isinstance(ptr, Pointer):
            raise IRInterpError("memory access through a non-pointer")
        if not (0 <= ptr.offset < len(ptr.array)):
            raise IRInterpError(
                f"out-of-bounds access at offset {ptr.offset} of {len(ptr.array)}"
            )


class _Missing:
    pass


_MISSING = _Missing()


def run_module(module: Module, entry: str = "main") -> List[int]:
    """Convenience wrapper around :class:`IRInterpreter`."""
    return IRInterpreter(module).run(entry)
