"""Structural IR verifier.

Checks the invariants every pass must preserve; tests run it after each
pipeline stage so a broken transformation fails loudly instead of producing
subtly-wrong graphs for the model.
"""

from __future__ import annotations

from typing import List

from repro.ir.module import (
    Argument,
    BasicBlock,
    Constant,
    Function,
    Instruction,
    Module,
)
from repro.ir.types import VOID


class VerificationError(ValueError):
    """Raised when a module violates an IR invariant."""


def verify_function(fn: Function) -> None:
    """Check one function's structural invariants."""
    if fn.is_declaration:
        if fn.blocks:
            raise VerificationError(f"{fn.name}: declaration with a body")
        return
    if not fn.blocks:
        raise VerificationError(f"{fn.name}: definition without blocks")

    all_blocks = set(fn.blocks)
    defined: set = set(id(a) for a in fn.args)
    for blk in fn.blocks:
        if not blk.instructions:
            raise VerificationError(f"{fn.name}/{blk.label}: empty block")
        term = blk.instructions[-1]
        if not term.is_terminator:
            raise VerificationError(f"{fn.name}/{blk.label}: missing terminator")
        for pos, instr in enumerate(blk.instructions):
            if instr.is_terminator and pos != len(blk.instructions) - 1:
                raise VerificationError(
                    f"{fn.name}/{blk.label}: terminator mid-block"
                )
            if instr.opcode == "phi" and pos > 0:
                prev = blk.instructions[pos - 1]
                if prev.opcode != "phi":
                    raise VerificationError(
                        f"{fn.name}/{blk.label}: phi after non-phi"
                    )
            for target in instr.blocks:
                if instr.opcode != "phi" and target not in all_blocks:
                    raise VerificationError(
                        f"{fn.name}/{blk.label}: branch to foreign block {target.label}"
                    )
            defined.add(id(instr))

    # Every operand must be a constant, argument, or instruction of this fn.
    instr_ids = {id(i) for i in fn.instructions()} | {id(a) for a in fn.args}
    for blk in fn.blocks:
        for instr in blk.instructions:
            for op in instr.operands:
                if isinstance(op, Constant):
                    continue
                if id(op) not in instr_ids:
                    raise VerificationError(
                        f"{fn.name}/{blk.label}: {instr.opcode} uses a value "
                        f"from outside the function: {op!r}"
                    )

    # Phi incoming blocks must be actual predecessors.
    preds = fn.predecessors()
    reachable = fn.reachable_blocks()
    for blk in fn.blocks:
        if blk not in reachable:
            continue
        pred_set = set(p for p in preds[blk] if p in reachable)
        for phi in blk.phis():
            incoming = set(phi.blocks)
            if not pred_set.issubset(incoming):
                missing = [p.label for p in pred_set - incoming]
                raise VerificationError(
                    f"{fn.name}/{blk.label}: phi missing incoming for {missing}"
                )


def verify_module(module: Module) -> None:
    """Verify every function plus module-level invariants."""
    names = [f.name for f in module.functions]
    if len(names) != len(set(names)):
        raise VerificationError("duplicate function names")
    for fn in module.functions:
        verify_function(fn)


def collect_callees(module: Module) -> List[str]:
    """All callee names referenced by call instructions."""
    out = []
    for fn in module.defined_functions():
        for instr in fn.instructions():
            if instr.opcode == "call":
                out.append(instr.extra["callee"])
    return out
