"""IR verifier: structural invariants plus analysis-backed checks.

Two layers, both raising :class:`VerificationError` with the function
name, block label, and offending instruction's ``short()`` spelling —
so a failure deep in the staged pipeline names the exact instruction to
look at:

* :func:`verify_module` / :func:`verify_function` — *structural* shape:
  blocks terminate, phis lead their block, operands stay inside the
  function, branch targets exist.  Cheap; tests run it after each
  pipeline stage.
* :func:`verify_dataflow` — *semantic* checks backed by the analysis
  framework (:mod:`repro.ir.analysis`): every non-phi use dominated by
  its definition, phi arity matching the reachable predecessors, uses
  the reaching-definitions fixpoint never delivers a value to.  This is
  what the pass pipeline runs after every optimization / transform pass
  under the ``verify`` debug flag.

:func:`verify_all` composes both.
"""

from __future__ import annotations

from typing import List

from repro.ir.module import (
    Argument,
    BasicBlock,
    Constant,
    Function,
    Instruction,
    Module,
)
from repro.ir.types import VOID


class VerificationError(ValueError):
    """Raised when a module violates an IR invariant."""


def _instr_label(instr: Instruction) -> str:
    if instr.type != VOID:
        return f"{instr.short()} = {instr.opcode}"
    return instr.opcode


def _where(fn: Function, blk: BasicBlock, instr: Instruction) -> str:
    return f"{fn.name}/{blk.label}: [{_instr_label(instr)}]"


def verify_function(fn: Function) -> None:
    """Check one function's structural invariants."""
    if fn.is_declaration:
        if fn.blocks:
            raise VerificationError(f"{fn.name}: declaration with a body")
        return
    if not fn.blocks:
        raise VerificationError(f"{fn.name}: definition without blocks")

    all_blocks = set(fn.blocks)
    for blk in fn.blocks:
        if not blk.instructions:
            raise VerificationError(f"{fn.name}/{blk.label}: empty block")
        term = blk.instructions[-1]
        if not term.is_terminator:
            raise VerificationError(
                f"{_where(fn, blk, term)}: block does not end in a terminator"
            )
        for pos, instr in enumerate(blk.instructions):
            if instr.is_terminator and pos != len(blk.instructions) - 1:
                raise VerificationError(
                    f"{_where(fn, blk, instr)}: terminator mid-block"
                )
            if instr.opcode == "phi" and pos > 0:
                prev = blk.instructions[pos - 1]
                if prev.opcode != "phi":
                    raise VerificationError(
                        f"{_where(fn, blk, instr)}: phi after non-phi "
                        f"[{_instr_label(prev)}]"
                    )
            for target in instr.blocks:
                if instr.opcode != "phi" and target not in all_blocks:
                    raise VerificationError(
                        f"{_where(fn, blk, instr)}: branch to foreign block "
                        f"{target.label}"
                    )

    # Every operand must be a constant, argument, or instruction of this fn.
    instr_ids = {id(i) for i in fn.instructions()} | {id(a) for a in fn.args}
    for blk in fn.blocks:
        for instr in blk.instructions:
            for op in instr.operands:
                if isinstance(op, Constant):
                    continue
                if id(op) not in instr_ids:
                    raise VerificationError(
                        f"{_where(fn, blk, instr)}: operand {op.short()} is "
                        f"defined outside the function: {op!r}"
                    )

    # Phi incoming blocks must cover the reachable predecessors.
    preds = fn.predecessors()
    reachable = fn.reachable_blocks()
    for blk in fn.blocks:
        if blk not in reachable:
            continue
        pred_set = set(p for p in preds[blk] if p in reachable)
        for phi in blk.phis():
            incoming = set(phi.blocks)
            if not pred_set.issubset(incoming):
                missing = sorted(p.label for p in pred_set - incoming)
                raise VerificationError(
                    f"{_where(fn, blk, phi)}: phi missing incoming for {missing}"
                )


def verify_module(module: Module) -> None:
    """Verify every function plus module-level invariants."""
    names = [f.name for f in module.functions]
    if len(names) != len(set(names)):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise VerificationError(f"duplicate function names: {dupes}")
    for fn in module.functions:
        verify_function(fn)


def verify_dataflow(module: Module) -> None:
    """Raise on the first error-severity analysis finding.

    Runs the dominance / reaching-defs / phi-arity checks of
    :mod:`repro.ir.analysis.checks`; warnings (e.g. unreachable blocks,
    which passes legitimately create mid-pipeline) do not raise.
    """
    from repro.ir.analysis.checks import SEVERITY_ERROR, analyze_module

    for finding in analyze_module(module):
        if finding.severity == SEVERITY_ERROR:
            raise VerificationError(
                f"{finding.function}/{finding.block}: "
                f"[{finding.instruction}]: {finding.kind}: {finding.message}"
            )


def verify_all(module: Module, context: str = "") -> None:
    """Structural + dataflow verification, with optional failure context.

    ``context`` names what just ran (a pass or transform); it prefixes
    the error message so a pipeline failure reads "after pass X: ...".
    """
    try:
        verify_module(module)
        verify_dataflow(module)
    except VerificationError as exc:
        if context:
            raise VerificationError(f"{context}: {exc}") from exc
        raise


def collect_callees(module: Module) -> List[str]:
    """All callee names referenced by call instructions."""
    out = []
    for fn in module.defined_functions():
        for instr in fn.instructions():
            if instr.opcode == "call":
                out.append(instr.extra["callee"])
    return out
