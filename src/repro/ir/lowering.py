"""AST → IR lowering: the Clang / JLang front-end substitute.

Two lowerers share a structured-control-flow core but diverge exactly where
the paper says real front-ends diverge:

* :class:`ClangLowering` (C and C++) — direct loads/stores, stack arrays,
  and (for C++) *template instantiation*: ``std::sort``/``std::max``/...
  calls become calls to mangled ``_ZSt...`` functions whose bodies are
  generated into the module, so C++ IR carries library code inline.
* :class:`JLangLowering` (Java) — heap arrays via ``@java.newarray``,
  array lengths via ``@java.arraylength``, *bounds checks with throw blocks
  on every array access*, and library calls (``Arrays.sort``, ``Math.max``)
  that stay external declarations.  Java IR is therefore systematically
  larger and call-heavier than C/C++ IR for the same program — the size
  asymmetry behind the paper's Figure 4 case study.

Both emit Clang -O0 style code: every local lives in an ``alloca`` and is
loaded/stored around each use; the mem2reg pass promotes to SSA at -O1+.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.builder import IRBuilder
from repro.ir.module import Constant, Function, Instruction, Module, Value
from repro.ir.types import I1, I32, VOID, IRType, PtrType
from repro.lang import ast


class LoweringError(ValueError):
    """Raised when an AST uses a construct the target front-end lacks."""


class _FunctionLowering:
    """Per-function lowering state."""

    def __init__(self, parent: "BaseLowering", fn: Function):  # noqa: D107
        self.parent = parent
        self.fn = fn
        self.builder = IRBuilder()
        # name -> (pointer value, is_array)
        self.slots: Dict[str, Tuple[Value, bool]] = {}
        # (break_target, continue_target) stack
        self.loop_stack: List[Tuple] = []
        self.terminated = False

    # ----------------------------------------------------------- plumbing
    def start_block(self, blk) -> None:
        self.builder.position(blk)
        self.terminated = False

    def finish_block(self) -> None:
        self.terminated = True

    def emit_fallthrough_ret(self) -> None:
        """Close a function whose body may fall off the end."""
        if not self.terminated and self.builder.block.terminator is None:
            if self.fn.return_type == VOID:
                self.builder.ret()
            else:
                self.builder.ret(Constant(0, self.fn.return_type))

    # --------------------------------------------------------- statements
    def lower_body(self, body: ast.Block) -> None:
        entry = self.fn.new_block("entry")
        self.start_block(entry)
        # O0 convention: spill parameters into allocas.
        for arg in self.fn.args:
            slot = self.builder.alloca(arg.type, name=arg.name)
            self.builder.store(arg, slot)
            self.slots[arg.name] = (slot, isinstance(arg.type, PtrType))
        self.lower_block(body)
        self.emit_fallthrough_ret()

    def lower_block(self, blk: ast.Block) -> None:
        for stmt in blk.statements:
            if self.terminated:
                return  # unreachable trailing statements are dropped
            self.lower_stmt(stmt)

    def lower_stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self.lower_block(s)
        elif isinstance(s, ast.VarDecl):
            self.lower_decl(s)
        elif isinstance(s, ast.Assign):
            self.lower_assign(s)
        elif isinstance(s, ast.If):
            self.lower_if(s)
        elif isinstance(s, ast.While):
            self.lower_while(s)
        elif isinstance(s, ast.For):
            self.lower_for(s)
        elif isinstance(s, ast.Return):
            value = None
            if s.value is not None:
                value = self.as_int(self.lower_expr(s.value))
            self.builder.ret(value)
            self.finish_block()
        elif isinstance(s, ast.Break):
            if not self.loop_stack:
                raise LoweringError("break outside loop")
            self.builder.br(self.loop_stack[-1][0])
            self.finish_block()
        elif isinstance(s, ast.Continue):
            if not self.loop_stack:
                raise LoweringError("continue outside loop")
            self.builder.br(self.loop_stack[-1][1])
            self.finish_block()
        elif isinstance(s, ast.Print):
            value = self.as_int(self.lower_expr(s.value))
            self.parent.emit_print(self.builder, value)
        elif isinstance(s, ast.ExprStmt):
            self.lower_expr(s.expr, want_value=False)
        else:
            raise LoweringError(f"cannot lower {type(s).__name__}")

    def lower_decl(self, s: ast.VarDecl) -> None:
        if isinstance(s.type, ast.ArrayType):
            if isinstance(s.init, ast.NewArray):
                size = self.as_int(self.lower_expr(s.init.size))
                ptr = self.parent.emit_array_alloc(self.builder, size)
                self.slots[s.name] = (self._spill_ptr(ptr), True)
            elif isinstance(s.init, ast.ArrayLit):
                size = Constant(len(s.init.elements), I32)
                ptr = self.parent.emit_array_alloc(self.builder, size)
                slot = self._spill_ptr(ptr)
                self.slots[s.name] = (slot, True)
                for k, el in enumerate(s.init.elements):
                    val = self.as_int(self.lower_expr(el))
                    base = self.builder.load(slot)
                    addr = self.builder.gep(base, Constant(k, I32))
                    self.builder.store(val, addr)
            elif s.init is not None:
                ptr = self.lower_expr(s.init)
                self.slots[s.name] = (self._spill_ptr(ptr), True)
            else:
                raise LoweringError("array declaration requires an initializer")
            return
        slot = self.builder.alloca(I32, name=s.name)
        self.slots[s.name] = (slot, False)
        if s.init is not None:
            self.builder.store(self.as_int(self.lower_expr(s.init)), slot)

    def _spill_ptr(self, ptr: Value) -> Value:
        """Keep array pointers in allocas too (O0 style)."""
        slot = self.builder.alloca(ptr.type)
        self.builder.store(ptr, slot)
        return slot

    def lower_assign(self, s: ast.Assign) -> None:
        value = self.as_int(self.lower_expr(s.value))
        if isinstance(s.target, ast.Var):
            slot, is_array = self.slots.get(s.target.name, (None, False))
            if slot is None:
                raise LoweringError(f"assignment to undeclared {s.target.name}")
            self.builder.store(value, slot)
        elif isinstance(s.target, ast.Index):
            addr = self.lower_element_addr(s.target)
            self.builder.store(value, addr)
        else:
            raise LoweringError("bad assignment target")

    def lower_element_addr(self, target: ast.Index) -> Value:
        """Address of an array element, with front-end-specific checking."""
        base = self.lower_expr(target.base)
        index = self.as_int(self.lower_expr(target.index))
        return self.parent.emit_element_addr(self, base, index)

    # -------------------------------------------------------------- control
    def lower_if(self, s: ast.If) -> None:
        cond = self.as_bool(self.lower_expr(s.cond))
        then_blk = self.fn.new_block("if.then")
        merge_blk = self.fn.new_block("if.end")
        else_blk = self.fn.new_block("if.else") if s.otherwise is not None else merge_blk
        self.builder.condbr(cond, then_blk, else_blk)

        self.start_block(then_blk)
        self.lower_block(s.then)
        if not self.terminated:
            self.builder.br(merge_blk)
        if s.otherwise is not None:
            self.start_block(else_blk)
            self.lower_block(s.otherwise)
            if not self.terminated:
                self.builder.br(merge_blk)
        self.start_block(merge_blk)

    def lower_while(self, s: ast.While) -> None:
        header = self.fn.new_block("while.cond")
        body = self.fn.new_block("while.body")
        exit_blk = self.fn.new_block("while.end")
        self.builder.br(header)
        self.start_block(header)
        cond = self.as_bool(self.lower_expr(s.cond))
        self.builder.condbr(cond, body, exit_blk)
        self.start_block(body)
        self.loop_stack.append((exit_blk, header))
        self.lower_block(s.body)
        self.loop_stack.pop()
        if not self.terminated:
            self.builder.br(header)
        self.start_block(exit_blk)

    def lower_for(self, s: ast.For) -> None:
        if s.init is not None:
            self.lower_stmt(s.init)
        header = self.fn.new_block("for.cond")
        body = self.fn.new_block("for.body")
        step_blk = self.fn.new_block("for.inc")
        exit_blk = self.fn.new_block("for.end")
        self.builder.br(header)
        self.start_block(header)
        if s.cond is not None:
            cond = self.as_bool(self.lower_expr(s.cond))
            self.builder.condbr(cond, body, exit_blk)
        else:
            self.builder.br(body)
        self.start_block(body)
        self.loop_stack.append((exit_blk, step_blk))
        self.lower_block(s.body)
        self.loop_stack.pop()
        if not self.terminated:
            self.builder.br(step_blk)
        self.start_block(step_blk)
        if s.step is not None:
            self.lower_stmt(s.step)
        self.builder.br(header)
        self.start_block(exit_blk)

    # ---------------------------------------------------------- expressions
    BINOPS = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "sdiv",
        "%": "srem",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<<": "shl",
        ">>": "ashr",
    }
    CMPS = {"<": "slt", "<=": "sle", ">": "sgt", ">=": "sge", "==": "eq", "!=": "ne"}

    def lower_expr(self, e: ast.Expr, want_value: bool = True) -> Value:
        if isinstance(e, ast.IntLit):
            return Constant(e.value, I32)
        if isinstance(e, ast.BoolLit):
            return Constant(1 if e.value else 0, I1)
        if isinstance(e, ast.Var):
            slot, is_array = self.slots.get(e.name, (None, False))
            if slot is None:
                raise LoweringError(f"undefined variable {e.name}")
            return self.builder.load(slot)
        if isinstance(e, ast.BinOp):
            return self.lower_binop(e)
        if isinstance(e, ast.UnaryOp):
            if e.op == "-":
                val = self.as_int(self.lower_expr(e.operand))
                return self.builder.sub(Constant(0, I32), val)
            if e.op == "!":
                val = self.as_bool(self.lower_expr(e.operand))
                return self.builder.binary("xor", val, Constant(1, I1))
            raise LoweringError(f"unknown unary {e.op}")
        if isinstance(e, ast.Index):
            addr = self.lower_element_addr(e)
            return self.builder.load(addr)
        if isinstance(e, ast.NewArray):
            size = self.as_int(self.lower_expr(e.size))
            return self.parent.emit_array_alloc(self.builder, size)
        if isinstance(e, ast.Call):
            return self.parent.emit_call(self, e, want_value)
        raise LoweringError(f"cannot lower expression {type(e).__name__}")

    def lower_binop(self, e: ast.BinOp) -> Value:
        if e.op in ("&&", "||"):
            return self.lower_short_circuit(e)
        if e.op in self.CMPS:
            lhs = self.as_int(self.lower_expr(e.left))
            rhs = self.as_int(self.lower_expr(e.right))
            return self.builder.icmp(self.CMPS[e.op], lhs, rhs)
        if e.op in self.BINOPS:
            lhs = self.as_int(self.lower_expr(e.left))
            rhs = self.as_int(self.lower_expr(e.right))
            return self.builder.binary(self.BINOPS[e.op], lhs, rhs)
        raise LoweringError(f"unknown operator {e.op}")

    def lower_short_circuit(self, e: ast.BinOp) -> Value:
        """``&&``/``||`` become control flow + phi, as Clang emits."""
        lhs = self.as_bool(self.lower_expr(e.left))
        lhs_block = self.builder.block
        rhs_blk = self.fn.new_block("sc.rhs")
        merge_blk = self.fn.new_block("sc.end")
        if e.op == "&&":
            self.builder.condbr(lhs, rhs_blk, merge_blk)
            short_value = Constant(0, I1)
        else:
            self.builder.condbr(lhs, merge_blk, rhs_blk)
            short_value = Constant(1, I1)
        self.start_block(rhs_blk)
        rhs = self.as_bool(self.lower_expr(e.right))
        rhs_end = self.builder.block
        self.builder.br(merge_blk)
        self.start_block(merge_blk)
        return self.builder.phi(I1, [(short_value, lhs_block), (rhs, rhs_end)])

    # ------------------------------------------------------------ coercion
    def as_bool(self, value: Value) -> Value:
        """Coerce to i1 (non-zero test for ints)."""
        if value.type == I1:
            return value
        return self.builder.icmp("ne", value, Constant(0, value.type))

    def as_int(self, value: Value) -> Value:
        """Coerce to i32 (zext for bools, identity for pointers/ints)."""
        if value.type == I1:
            return self.builder.zext(value, I32)
        return value


class BaseLowering:
    """Shared module-level lowering driver; subclasses specialize idioms."""

    source_language = "?"
    print_callee = "print_i32"

    def __init__(self) -> None:  # noqa: D107
        self.module: Optional[Module] = None

    # ------------------------------------------------------------- driver
    def lower(self, program: ast.Program, name: str = "module") -> Module:
        """Lower a whole program to a fresh module."""
        self.module = Module(name, source_language=self.source_language)
        # Pre-scan signatures so forward/recursive calls get correct types.
        self._ast_returns = {
            f.name: (VOID if f.return_type == ast.ScalarType("void") else I32)
            for f in program.functions
        }
        self.begin_module(program)
        for f in program.functions:
            self.lower_function(f)
        self.end_module()
        return self.module

    def begin_module(self, program: ast.Program) -> None:
        """Hook: add runtime declarations."""

    def end_module(self) -> None:
        """Hook: add instantiated template bodies etc."""

    def lower_function(self, f: ast.Function) -> Function:
        """Lower one function definition."""
        arg_types = [
            PtrType(I32) if isinstance(p.type, ast.ArrayType) else I32
            for p in f.params
        ]
        ret = VOID if f.return_type == ast.ScalarType("void") else I32
        fn = Function(f.name, arg_types, [p.name for p in f.params], ret)
        self.module.add(fn)
        _FunctionLowering(self, fn).lower_body(f.body)
        return fn

    def declare(self, name: str, arg_types, ret) -> None:
        """Add an external declaration once."""
        if not self.module.has(name):
            self.module.add(
                Function(
                    name,
                    arg_types,
                    [f"a{i}" for i in range(len(arg_types))],
                    ret,
                    is_declaration=True,
                )
            )

    # ------------------------------------------------------ idiom hooks
    def emit_print(self, builder: IRBuilder, value: Value) -> None:
        """Output an integer."""
        self.declare(self.print_callee, [I32], VOID)
        builder.call(self.print_callee, [value], VOID)

    def emit_array_alloc(self, builder: IRBuilder, size: Value) -> Value:
        """Allocate an array of ``size`` i32s (stack for C/C++)."""
        return builder.alloca(I32, count=size)

    def emit_element_addr(self, fl: _FunctionLowering, base: Value, index: Value) -> Value:
        """Address of element (no checks for C/C++)."""
        return fl.builder.gep(base, index)

    def emit_call(self, fl: _FunctionLowering, e: ast.Call, want_value: bool) -> Value:
        """Lower a call; builtins are language-specific."""
        raise NotImplementedError


class ClangLowering(BaseLowering):
    """C front-end: no builtins — every callee is defined in the file."""

    source_language = "c"
    print_callee = "printf"

    def emit_call(self, fl: _FunctionLowering, e: ast.Call, want_value: bool) -> Value:
        if e.name in ("len", "sort", "max", "min", "abs", "swap"):
            raise LoweringError(f"C has no builtin {e.name!r}")
        args = [fl.as_int(fl.lower_expr(a)) for a in e.args]
        return fl.builder.call(e.name, args, self._ret_of(e.name))

    def _ret_of(self, name: str) -> IRType:
        if name in self._ast_returns:
            return self._ast_returns[name]
        try:
            return self.module.get(name).return_type
        except KeyError:
            return I32


# Itanium-style mangled names for the instantiated templates.
MANGLED_SORT = "_ZSt4sortIPiEvT_S1_"
MANGLED_MAX = "_ZSt3maxIiERKT_S2_S2_"
MANGLED_MIN = "_ZSt3minIiERKT_S2_S2_"
MANGLED_ABS = "_ZSt3absIiET_S0_"
MANGLED_SWAP = "_ZSt4swapIiEvRT_S1_"
CXX_PRINT = "_ZNSolsEi"  # std::ostream::operator<<(int)


class CppLowering(ClangLowering):
    """C++ front-end: std:: builtins instantiate template bodies in-module."""

    source_language = "cpp"
    print_callee = CXX_PRINT

    def __init__(self) -> None:  # noqa: D107
        super().__init__()
        self._needed_templates: set = set()

    def begin_module(self, program: ast.Program) -> None:
        self._needed_templates = set()

    def emit_call(self, fl: _FunctionLowering, e: ast.Call, want_value: bool) -> Value:
        mapping = {
            "sort": (MANGLED_SORT, VOID),
            "max": (MANGLED_MAX, I32),
            "min": (MANGLED_MIN, I32),
            "abs": (MANGLED_ABS, I32),
        }
        if e.name in mapping:
            callee, ret = mapping[e.name]
            self._needed_templates.add(e.name)
            args = []
            for a in e.args:
                val = fl.lower_expr(a)
                if val.type == I1:
                    val = fl.as_int(val)
                args.append(val)
            return fl.builder.call(callee, args, ret)
        if e.name == "len":
            raise LoweringError("C++ has no builtin len()")
        return super().emit_call(fl, e, want_value)

    def end_module(self) -> None:
        """Generate the instantiated template function bodies."""
        if "sort" in self._needed_templates:
            self._instantiate_sort()
        if "max" in self._needed_templates:
            self._instantiate_minmax(MANGLED_MAX, "sgt")
        if "min" in self._needed_templates:
            self._instantiate_minmax(MANGLED_MIN, "slt")
        if "abs" in self._needed_templates:
            self._instantiate_abs()

    def _instantiate_minmax(self, name: str, pred: str) -> None:
        fn = Function(name, [I32, I32], ["a", "b"], I32)
        self.module.add(fn)
        b = IRBuilder()
        entry = fn.new_block("entry")
        take_a = fn.new_block("take.a")
        take_b = fn.new_block("take.b")
        b.position(entry)
        cmp = b.icmp(pred, fn.args[0], fn.args[1])
        b.condbr(cmp, take_a, take_b)
        b.position(take_a)
        b.ret(fn.args[0])
        b.position(take_b)
        b.ret(fn.args[1])

    def _instantiate_abs(self) -> None:
        fn = Function(MANGLED_ABS, [I32], ["a"], I32)
        self.module.add(fn)
        b = IRBuilder()
        entry = fn.new_block("entry")
        neg = fn.new_block("neg")
        pos = fn.new_block("pos")
        b.position(entry)
        cmp = b.icmp("slt", fn.args[0], Constant(0, I32))
        b.condbr(cmp, neg, pos)
        b.position(neg)
        negated = b.sub(Constant(0, I32), fn.args[0])
        b.ret(negated)
        b.position(pos)
        b.ret(fn.args[0])

    def _instantiate_sort(self) -> None:
        """Instantiated ``std::sort`` on int pointers — an in-IR bubble sort.

        The call convention is (base_ptr, n); n was recovered from the
        ``first + n`` iterator form at parse time.
        """
        fn = Function(MANGLED_SORT, [PtrType(I32), I32], ["first", "n"], VOID)
        self.module.add(fn)
        b = IRBuilder()
        entry = fn.new_block("entry")
        outer_cond = fn.new_block("outer.cond")
        outer_body = fn.new_block("outer.body")
        inner_cond = fn.new_block("inner.cond")
        inner_body = fn.new_block("inner.body")
        do_swap = fn.new_block("do.swap")
        inner_inc = fn.new_block("inner.inc")
        outer_inc = fn.new_block("outer.inc")
        done = fn.new_block("done")

        base, n = fn.args
        b.position(entry)
        i_slot = b.alloca(I32, name="i")
        j_slot = b.alloca(I32, name="j")
        b.store(Constant(0, I32), i_slot)
        b.br(outer_cond)

        b.position(outer_cond)
        i_val = b.load(i_slot)
        c0 = b.icmp("slt", i_val, n)
        b.condbr(c0, outer_body, done)

        b.position(outer_body)
        b.store(Constant(0, I32), j_slot)
        b.br(inner_cond)

        b.position(inner_cond)
        j_val = b.load(j_slot)
        limit = b.sub(n, Constant(1, I32))
        c1 = b.icmp("slt", j_val, limit)
        b.condbr(c1, inner_body, outer_inc)

        b.position(inner_body)
        j_cur = b.load(j_slot)
        p0 = b.gep(base, j_cur)
        v0 = b.load(p0)
        j_next = b.add(j_cur, Constant(1, I32))
        p1 = b.gep(base, j_next)
        v1 = b.load(p1)
        c2 = b.icmp("sgt", v0, v1)
        b.condbr(c2, do_swap, inner_inc)

        b.position(do_swap)
        b.store(v1, p0)
        b.store(v0, p1)
        b.br(inner_inc)

        b.position(inner_inc)
        j2 = b.load(j_slot)
        b.store(b.add(j2, Constant(1, I32)), j_slot)
        b.br(inner_cond)

        b.position(outer_inc)
        i2 = b.load(i_slot)
        b.store(b.add(i2, Constant(1, I32)), i_slot)
        b.br(outer_cond)

        b.position(done)
        b.ret()


JAVA_NEWARRAY = "java.newarray"
JAVA_ARRAYLENGTH = "java.arraylength"
JAVA_ARRAYS_SORT = "java.util.Arrays.sort"
JAVA_MATH = {"max": "java.lang.Math.max", "min": "java.lang.Math.min", "abs": "java.lang.Math.abs"}
JAVA_PRINTLN = "java.io.PrintStream.println"
JAVA_THROW_OOB = "java.throw.ArrayIndexOutOfBounds"


class JLangLowering(BaseLowering):
    """Java front-end: runtime-managed arrays, bounds checks, external libs."""

    source_language = "java"
    print_callee = JAVA_PRINTLN

    def begin_module(self, program: ast.Program) -> None:
        self.declare(JAVA_NEWARRAY, [I32], PtrType(I32))
        self.declare(JAVA_ARRAYLENGTH, [PtrType(I32)], I32)
        self.declare(JAVA_THROW_OOB, [], VOID)

    def emit_array_alloc(self, builder: IRBuilder, size: Value) -> Value:
        """Java arrays come from the runtime, not the stack."""
        return builder.call(JAVA_NEWARRAY, [size], PtrType(I32))

    def emit_element_addr(self, fl: _FunctionLowering, base: Value, index: Value) -> Value:
        """Array access with a bounds check and throw block (JVM semantics)."""
        b = fl.builder
        length = b.call(JAVA_ARRAYLENGTH, [base], I32)
        nonneg = b.icmp("sge", index, Constant(0, I32))
        below = b.icmp("slt", index, length)
        ok = b.binary("and", nonneg, below)
        ok_blk = fl.fn.new_block("bc.ok")
        oob_blk = fl.fn.new_block("bc.throw")
        b.condbr(ok, ok_blk, oob_blk)
        fl.start_block(oob_blk)
        b.call(JAVA_THROW_OOB, [], VOID)
        b.unreachable()
        fl.start_block(ok_blk)
        return b.gep(base, index)

    def emit_call(self, fl: _FunctionLowering, e: ast.Call, want_value: bool) -> Value:
        b = fl.builder
        if e.name == "len":
            arr = fl.lower_expr(e.args[0])
            return b.call(JAVA_ARRAYLENGTH, [arr], I32)
        if e.name == "sort":
            arr = fl.lower_expr(e.args[0])
            hi = fl.as_int(fl.lower_expr(e.args[1]))
            self.declare(JAVA_ARRAYS_SORT, [PtrType(I32), I32, I32], VOID)
            return b.call(JAVA_ARRAYS_SORT, [arr, Constant(0, I32), hi], VOID)
        if e.name in JAVA_MATH:
            callee = JAVA_MATH[e.name]
            self.declare(callee, [I32] * len(e.args), I32)
            args = [fl.as_int(fl.lower_expr(a)) for a in e.args]
            return b.call(callee, args, I32)
        args = [fl.as_int(fl.lower_expr(a)) for a in e.args]
        return b.call(e.name, args, self._ast_returns.get(e.name, I32))


LOWERERS = {
    "c": ClangLowering,
    "cpp": CppLowering,
    "java": JLangLowering,
}


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower using the front-end matching ``program.language``."""
    lang = program.language or "c"
    if lang not in LOWERERS:
        raise LoweringError(f"no front-end for language {lang!r}")
    return LOWERERS[lang]().lower(program, name=name)
