"""IRBuilder: positioned instruction factory, like ``llvm::IRBuilder``."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.module import BasicBlock, Constant, Instruction, Value
from repro.ir.types import I1, I32, I64, VOID, IRType, PtrType


class IRBuilder:
    """Appends instructions to a current insertion block."""

    def __init__(self, block: Optional[BasicBlock] = None):  # noqa: D107
        self.block = block

    def position(self, block: BasicBlock) -> None:
        """Move the insertion point to ``block``."""
        self.block = block

    def _emit(self, instr: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        term = self.block.terminator
        if term is not None:
            raise RuntimeError(
                f"emitting into terminated block {self.block.label}"
            )
        return self.block.append(instr)

    # ----------------------------------------------------------- memory
    def alloca(self, element: IRType, count: Optional[Value] = None, name: str = "") -> Instruction:
        """Stack allocation of one element, or ``count`` elements."""
        operands = [count] if count is not None else []
        return self._emit(
            Instruction("alloca", operands, PtrType(element), extra={"name": name})
        )

    def load(self, ptr: Value) -> Instruction:
        """Load through a pointer."""
        if not isinstance(ptr.type, PtrType):
            raise TypeError(f"load from non-pointer {ptr.type}")
        return self._emit(Instruction("load", [ptr], ptr.type.element))

    def store(self, value: Value, ptr: Value) -> Instruction:
        """Store through a pointer."""
        if not isinstance(ptr.type, PtrType):
            raise TypeError(f"store to non-pointer {ptr.type}")
        return self._emit(Instruction("store", [value, ptr], VOID))

    def gep(self, ptr: Value, index: Value) -> Instruction:
        """Pointer arithmetic: ``&ptr[index]``."""
        if not isinstance(ptr.type, PtrType):
            raise TypeError(f"gep on non-pointer {ptr.type}")
        return self._emit(Instruction("gep", [ptr, index], ptr.type))

    # ------------------------------------------------------- arithmetic
    def binary(self, op: str, lhs: Value, rhs: Value) -> Instruction:
        """Integer binary operation (result type = lhs type)."""
        return self._emit(Instruction(op, [lhs, rhs], lhs.type))

    def add(self, a: Value, b: Value) -> Instruction:
        """a + b"""
        return self.binary("add", a, b)

    def sub(self, a: Value, b: Value) -> Instruction:
        """a - b"""
        return self.binary("sub", a, b)

    def mul(self, a: Value, b: Value) -> Instruction:
        """a * b"""
        return self.binary("mul", a, b)

    def sdiv(self, a: Value, b: Value) -> Instruction:
        """a / b (signed, truncating)"""
        return self.binary("sdiv", a, b)

    def srem(self, a: Value, b: Value) -> Instruction:
        """a % b (signed)"""
        return self.binary("srem", a, b)

    def icmp(self, pred: str, lhs: Value, rhs: Value) -> Instruction:
        """Integer comparison producing i1."""
        return self._emit(Instruction("icmp", [lhs, rhs], I1, extra={"pred": pred}))

    def zext(self, value: Value, to: IRType) -> Instruction:
        """Zero-extend."""
        return self._emit(Instruction("zext", [value], to))

    def sext(self, value: Value, to: IRType) -> Instruction:
        """Sign-extend."""
        return self._emit(Instruction("sext", [value], to))

    def trunc(self, value: Value, to: IRType) -> Instruction:
        """Truncate to a narrower integer."""
        return self._emit(Instruction("trunc", [value], to))

    # ----------------------------------------------------- control flow
    def br(self, target: BasicBlock) -> Instruction:
        """Unconditional branch."""
        return self._emit(Instruction("br", [], VOID, blocks=[target]))

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        """Conditional branch on an i1."""
        return self._emit(
            Instruction("condbr", [cond], VOID, blocks=[if_true, if_false])
        )

    def ret(self, value: Optional[Value] = None) -> Instruction:
        """Return (optionally with a value)."""
        return self._emit(Instruction("ret", [value] if value is not None else [], VOID))

    def unreachable(self) -> Instruction:
        """Marker for impossible control flow (after a throw)."""
        return self._emit(Instruction("unreachable", [], VOID))

    def phi(self, type: IRType, pairs: Sequence[tuple] = ()) -> Instruction:
        """Phi node; ``pairs`` is a list of (value, predecessor_block)."""
        operands = [v for v, _ in pairs]
        blocks = [b for _, b in pairs]
        instr = Instruction("phi", operands, type, blocks=blocks)
        return self._emit(instr)

    def call(
        self,
        callee: str,
        args: Sequence[Value],
        return_type: IRType,
    ) -> Instruction:
        """Direct call by function name."""
        return self._emit(
            Instruction("call", list(args), return_type, extra={"callee": callee})
        )

    # -------------------------------------------------------- constants
    @staticmethod
    def const(value: int, type: IRType = I32) -> Constant:
        """Integer constant."""
        return Constant(value, type)

    @staticmethod
    def true() -> Constant:
        """i1 1"""
        return Constant(1, I1)

    @staticmethod
    def false() -> Constant:
        """i1 0"""
        return Constant(0, I1)
