"""The IR type system: i1/i32/i64 integers, typed pointers, void.

Mirrors the slice of LLVM's type system the reproduction needs.  Types are
interned value objects — compare with ``==`` or ``is`` via the module-level
singletons ``I1``/``I32``/``I64``/``VOID``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IRType:
    """Base marker for IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(IRType):
    """Fixed-width integer type (i1, i32, i64)."""

    bits: int

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class PtrType(IRType):
    """Pointer to an element type (``i32*``)."""

    element: IRType

    def __str__(self) -> str:
        return f"{self.element}*"


@dataclass(frozen=True)
class VoidType(IRType):
    """The void type (function returns only)."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class LabelType(IRType):
    """The type of basic-block labels (branch targets)."""

    def __str__(self) -> str:
        return "label"


I1 = IntType(1)
I32 = IntType(32)
I64 = IntType(64)
VOID = VoidType()
LABEL = LabelType()
PTR_I32 = PtrType(I32)
PTR_I64 = PtrType(I64)


def is_int(t: IRType) -> bool:
    """True for integer types."""
    return isinstance(t, IntType)


def is_ptr(t: IRType) -> bool:
    """True for pointer types."""
    return isinstance(t, PtrType)
