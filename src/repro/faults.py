"""Deterministic, seedable fault injection for the storage and serving tiers.

A production retrieval stack has to survive the failures a laptop run
never sees: truncated writes, torn renames, ``EIO``/``ENOSPC`` from a
sick disk, stalled IO, and workers dying or hanging mid-batch.  Until
this module, the only way to exercise any of that was a hand-written mock
inside one test file — nothing fired inside the *real* code paths, and
nothing fired inside spawned build/serve workers at all.

This module is the single switchboard.  Real code declares **sites** —
named points where a fault could strike — by calling :func:`hit` (may
raise / sleep / crash per the active plan) or by routing its atomic
commit through :func:`replace` (an ``os.replace`` that the plan can tear
or truncate).  Which faults strike where is a :class:`FaultPlan` parsed
from a spec string in the transform grammar's style
(:mod:`repro.transform`):

    kind[:site-glob][@prob][~seed]     one fault
    spec+spec+...                      several at once

``kind`` names a registered fault (see :data:`FAULT_REGISTRY`), the
optional ``site-glob`` narrows it to matching sites (``fnmatch`` glob
over names like ``artifacts.put.replace``; each kind has a sensible
default), ``prob`` ∈ [0, 1] is the per-encounter firing probability
(default 1), and ``seed`` makes the draw sequence deterministic: the
n-th encounter of a given (spec, site) pair fires identically in every
run, in any process.

Activation is either explicit (:func:`install` / :func:`clear` /
the :func:`active` context manager) or via the ``REPRO_FAULTS``
environment variable — which spawned build and serve worker processes
inherit, so faults fire inside real workers without any plumbing.  With
no plan installed every helper is a cheap no-op (one ``is None`` check).

Injected errors are real :class:`OSError` subtypes carrying real errno
values, prefixed ``"injected:"`` so logs and tests can tell them from
organic failures; ``benchmarks/bench_faults.py`` sweeps every kind and
gates that each one ends in a clean descriptive error or a bit-identical
correct result — never a hang, never a silently wrong answer.
"""

from __future__ import annotations

import errno
import math
import os
import threading
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import derive_rng


class FaultSpecError(ValueError):
    """Raised on unknown fault kinds or malformed fault specs."""


class InjectedFault(OSError):
    """An injected IO failure (real errno, ``injected:``-prefixed message)."""


#: Seconds one ``slow-io`` firing stalls a site.
SLOW_IO_SECONDS = 0.05

#: Total seconds a ``hang`` firing stalls (chunked so signals interrupt it).
HANG_SECONDS = 600.0

#: Fraction of the file kept by a ``truncated-write`` firing.
TRUNCATE_KEEP_FRACTION = 0.5

#: Exit code of an injected ``crash`` (distinct from Python tracebacks).
CRASH_EXIT_CODE = 23


@dataclass(frozen=True)
class FaultKind:
    """One registered injectable fault."""

    name: str
    default_sites: str  # fnmatch glob the kind applies to when unqualified
    description: str


#: Registered fault kinds, keyed by spec name.
FAULT_REGISTRY: Dict[str, FaultKind] = {
    k.name: k
    for k in (
        FaultKind(
            "truncated-write",
            "*.replace",
            "commit only the first half of the written file (silent corruption)",
        ),
        FaultKind(
            "torn-replace",
            "*.replace",
            "fail between write and rename, leaving the temp file behind",
        ),
        FaultKind("eio-read", "*.read", "raise OSError(EIO) at read sites"),
        FaultKind("eio-write", "*.write|*.replace", "raise OSError(EIO) at write sites"),
        FaultKind("enospc", "*.write|*.replace", "raise OSError(ENOSPC) at write sites"),
        FaultKind("slow-io", "*", f"stall the site for {SLOW_IO_SECONDS * 1000:.0f}ms"),
        FaultKind("crash", "*", "hard-exit the process at the site (os._exit)"),
        FaultKind("hang", "*", "stall the site far beyond any request deadline"),
    )
}


def _validate_prob(value) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise FaultSpecError(f"fault probability must be a number, got {value!r}") from None
    if math.isnan(out) or math.isinf(out) or out < 0.0 or out > 1.0:
        raise FaultSpecError(f"fault probability must be in [0, 1], got {value!r}")
    return out


@dataclass(frozen=True)
class FaultSpec:
    """One fully-determined injectable fault: (kind, site glob, prob, seed)."""

    kind: str
    sites: str = ""  # "" = the kind's default site glob
    prob: float = 1.0
    seed: int = 0

    def __post_init__(self):  # noqa: D105
        if self.kind not in FAULT_REGISTRY:
            raise FaultSpecError(
                f"unknown fault {self.kind!r}; registered: {sorted(FAULT_REGISTRY)}"
            )
        object.__setattr__(self, "prob", _validate_prob(self.prob))
        object.__setattr__(self, "seed", int(self.seed))

    @property
    def site_glob(self) -> str:
        """The effective site pattern (spec override or the kind default)."""
        return self.sites or FAULT_REGISTRY[self.kind].default_sites

    def matches(self, site: str) -> bool:
        """True when this spec applies at ``site`` (``|`` joins globs)."""
        return any(
            fnmatchcase(site, pat) for pat in self.site_glob.split("|")
        )

    @property
    def spec(self) -> str:
        """Canonical string form (``kind[:sites]@prob~seed``)."""
        sites = f":{self.sites}" if self.sites else ""
        return f"{self.kind}{sites}@{self.prob:g}~{self.seed}"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind[:site-glob][@prob][~seed]`` spec string."""
        body = text.strip()
        if not body:
            raise FaultSpecError("empty fault spec")
        seed = 0
        if "~" in body:
            body, seed_s = body.rsplit("~", 1)
            try:
                seed = int(seed_s)
            except ValueError:
                raise FaultSpecError(f"bad fault seed {seed_s!r} in {text!r}") from None
        prob: object = 1.0
        if "@" in body:
            body, prob = body.split("@", 1)
        sites = ""
        if ":" in body:
            body, sites = body.split(":", 1)
        return cls(kind=body.strip(), sites=sites.strip(), prob=_validate_prob(prob), seed=seed)


def parse_fault_chain(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``+``-stacked chain of fault specs; ``""`` means none."""
    if not text or not text.strip():
        return ()
    return tuple(FaultSpec.parse(part) for part in text.split("+"))


class FaultPlan:
    """An active set of fault specs with deterministic per-site draw streams.

    The n-th :meth:`should_fire` draw for a given (spec, site) pair is a
    pure function of (spec seed, kind, site, n): two processes that touch
    the same sites in the same order make identical firing decisions.
    Counters are per-process — a spawned worker starts its own streams.
    """

    def __init__(self, specs: Sequence[FaultSpec]):  # noqa: D107
        self.specs = tuple(specs)
        self._counts: Dict[Tuple[int, str], int] = {}
        self._lock = threading.Lock()

    def should_fire(self, spec_index: int, site: str) -> bool:
        """One deterministic probability draw for (spec, site)."""
        spec = self.specs[spec_index]
        if spec.prob >= 1.0:
            return True
        if spec.prob <= 0.0:
            return False
        with self._lock:
            n = self._counts.get((spec_index, site), 0)
            self._counts[(spec_index, site)] = n + 1
        rng = derive_rng(spec.seed, "fault", spec.kind, site, n)
        return bool(rng.random() < spec.prob)

    def firing(self, site: str) -> List[FaultSpec]:
        """Every spec that matches ``site`` and wins its draw, in spec order."""
        out = []
        for i, spec in enumerate(self.specs):
            if spec.matches(site) and self.should_fire(i, site):
                out.append(spec)
        return out

    @property
    def chain(self) -> str:
        """Canonical chain string for the whole plan."""
        return "+".join(s.spec for s in self.specs)


# ----------------------------------------------------------- activation
_installed: Optional[FaultPlan] = None
_env_text: Optional[str] = None
_env_plan: Optional[FaultPlan] = None
_state_lock = threading.Lock()


def install(spec_text: str) -> FaultPlan:
    """Activate a fault plan for this process (overrides ``REPRO_FAULTS``)."""
    global _installed
    plan = FaultPlan(parse_fault_chain(spec_text))
    with _state_lock:
        _installed = plan
    return plan


def clear() -> None:
    """Deactivate any installed plan (``REPRO_FAULTS`` applies again)."""
    global _installed
    with _state_lock:
        _installed = None


class active:
    """Context manager: install a plan on enter, restore the old on exit."""

    def __init__(self, spec_text: str):  # noqa: D107
        self.spec_text = spec_text
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _installed
        plan = FaultPlan(parse_fault_chain(self.spec_text))
        with _state_lock:
            self._previous = _installed
            _installed = plan
        return plan

    def __exit__(self, *exc) -> None:
        global _installed
        with _state_lock:
            _installed = self._previous


def current_plan() -> Optional[FaultPlan]:
    """The active plan: the installed one, else ``REPRO_FAULTS``, else None.

    The env var is re-parsed only when its value changes, so the no-fault
    hot path costs one dict lookup and one string compare.
    """
    global _env_text, _env_plan
    with _state_lock:
        if _installed is not None:
            return _installed
        text = os.environ.get("REPRO_FAULTS", "")
        if text != _env_text:
            _env_plan = FaultPlan(parse_fault_chain(text)) if text.strip() else None
            _env_text = text
        return _env_plan


# ---------------------------------------------------------- injection
def _strike(spec: FaultSpec, site: str) -> None:
    """Apply one non-replace fault effect at ``site``."""
    if spec.kind == "eio-read" or spec.kind == "eio-write":
        raise InjectedFault(errno.EIO, f"injected: {spec.kind} at {site}")
    if spec.kind == "enospc":
        raise InjectedFault(errno.ENOSPC, f"injected: enospc at {site}")
    if spec.kind == "slow-io":
        time.sleep(SLOW_IO_SECONDS)
    elif spec.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif spec.kind == "hang":
        # Chunked so SIGTERM/SIGINT (and test teardown) can interrupt the
        # process; only a per-request deadline rescues the *caller*.
        deadline = time.monotonic() + HANG_SECONDS
        while time.monotonic() < deadline:
            time.sleep(0.25)


def hit(site: str) -> None:
    """Fire every active fault matching ``site`` (no plan → no-op).

    May raise :class:`InjectedFault`, sleep, stall, or hard-exit the
    process, per the matching specs.  ``truncated-write`` and
    ``torn-replace`` never fire here — they only make sense inside
    :func:`replace`.
    """
    plan = current_plan()
    if plan is None:
        return
    for spec in plan.firing(site):
        if spec.kind not in ("truncated-write", "torn-replace"):
            _strike(spec, site)


def replace(src, dst, site: str) -> None:
    """``os.replace(src, dst)`` with the commit-time faults injectable.

    The one chokepoint every atomic temp-file commit in the repo routes
    through.  Site name ``{site}.replace``.  Effects, in order:

    * generic faults (``eio-write``/``enospc``/``slow-io``/``crash``/
      ``hang``) fire first, before anything is committed;
    * ``torn-replace`` raises :class:`InjectedFault` *without* renaming,
      leaving the temp file behind — the caller's cleanup (or the
      orphan-tmp sweep) must cope;
    * ``truncated-write`` truncates the temp file to
      :data:`TRUNCATE_KEEP_FRACTION` of its bytes and then commits it —
      the silent-corruption case checksum verification exists to catch.
    """
    full_site = f"{site}.replace"
    plan = current_plan()
    if plan is None:
        os.replace(src, dst)
        return
    fired = plan.firing(full_site)
    for spec in fired:
        if spec.kind not in ("truncated-write", "torn-replace"):
            _strike(spec, full_site)
    for spec in fired:
        if spec.kind == "torn-replace":
            raise InjectedFault(
                errno.EIO, f"injected: torn-replace at {full_site} (temp file kept)"
            )
    for spec in fired:
        if spec.kind == "truncated-write":
            size = os.path.getsize(src)
            os.truncate(src, int(size * TRUNCATE_KEEP_FRACTION))
    os.replace(src, dst)
