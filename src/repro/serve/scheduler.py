"""Micro-batching scheduler: admission-bounded, flush on size **or** deadline.

The stdin loop batches opportunistically — it flushes whenever the input
runs dry (:func:`repro.serve.core._lines_with_pending`), which works for
one pipe but has no notion of latency across many concurrent clients.
:class:`MicroBatchScheduler` generalizes that heuristic into explicit
knobs:

* a batch flushes as soon as it holds ``max_batch`` entries (throughput
  bound), **or** when the oldest buffered entry has waited
  ``max_delay_ms`` (latency bound) — whichever comes first, so a lone
  request is answered within one deadline instead of waiting for a batch
  that will never fill;
* admission is bounded end-to-end: at most ``max_pending`` entries may be
  admitted-but-unanswered at once.  :meth:`offer` returns False beyond
  that — the caller sheds the request immediately (an ``overloaded``
  response) instead of queueing unbounded work — and the caller returns
  capacity with :meth:`release` once a response is delivered.

The scheduler is transport-agnostic: entries are opaque objects, and the
``flush`` callback (called off-lock, on the scheduler thread or the
:meth:`flush_now` caller's thread) hands each formed batch downstream —
in the concurrent server, to the worker pool dispatcher.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Sequence


@dataclass
class SchedulerStats:
    """Counters for one scheduler lifetime (guarded by the scheduler lock)."""

    admitted: int = 0
    shed: int = 0
    batches: int = 0
    flushed_on_size: int = 0
    flushed_on_deadline: int = 0
    batch_sizes: List[int] = field(default_factory=list)


class MicroBatchScheduler:
    """Bounded queue + batch former in front of the worker pool."""

    def __init__(
        self,
        flush: Callable[[Sequence[object]], None],
        *,
        max_batch: int = 8,
        max_delay_ms: float = 10.0,
        max_pending: int = 64,
    ):  # noqa: D107
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_batch = max_batch
        self.max_delay = max_delay_ms / 1000.0
        self.max_pending = max_pending
        self._flush_cb = flush
        self._buf: deque = deque()  # (arrival_monotonic, entry)
        self._pending = 0
        self._closed = False
        self._cond = threading.Condition()
        self.stats = SchedulerStats()
        self._thread = threading.Thread(
            target=self._loop, name="serve-scheduler", daemon=True
        )

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the batch-forming thread."""
        self._thread.start()

    def close(self, drain: bool = True) -> None:
        """Stop the scheduler; with ``drain``, flush what is still buffered."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=5)
        if drain:
            self.flush_now()

    # ----------------------------------------------------------- admission
    def offer(self, entry) -> bool:
        """Admit one entry; False when the server is at ``max_pending``."""
        with self._cond:
            if self._closed or self._pending >= self.max_pending:
                self.stats.shed += 1
                return False
            self._pending += 1
            self.stats.admitted += 1
            self._buf.append((time.monotonic(), entry))
            self._cond.notify_all()
        return True

    def release(self, n: int = 1) -> None:
        """Return capacity for ``n`` entries whose responses were delivered."""
        with self._cond:
            self._pending = max(0, self._pending - n)

    @property
    def pending(self) -> int:
        """Entries admitted but not yet released (buffered or in flight)."""
        with self._cond:
            return self._pending

    # ------------------------------------------------------ batch forming
    def _pop_batch_locked(self) -> List[object]:
        batch = []
        while self._buf and len(batch) < self.max_batch:
            batch.append(self._buf.popleft()[1])
        if batch:
            self.stats.batches += 1
            self.stats.batch_sizes.append(len(batch))
        return batch

    def flush_now(self) -> int:
        """Synchronously flush everything buffered (hot-swap barrier).

        Returns how many entries were flushed.  Used before an index
        hot-swap so queries admitted before the swap are dispatched —
        and therefore served on the old index — before any worker sees
        the swap message.
        """
        flushed = 0
        while True:
            with self._cond:
                if not self._buf:
                    return flushed
                batch = self._pop_batch_locked()
            flushed += len(batch)
            self._flush_cb(batch)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._buf and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return  # close() drains what is left
                deadline = self._buf[0][0] + self.max_delay
                while len(self._buf) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._buf:
                        break
                    self._cond.wait(remaining)
                if not self._buf:
                    continue
                if len(self._buf) >= self.max_batch:
                    self.stats.flushed_on_size += 1
                else:
                    self.stats.flushed_on_deadline += 1
                batch = self._pop_batch_locked()
            if batch:
                self._flush_cb(batch)
