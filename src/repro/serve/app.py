"""App factory: assemble front end + scheduler + worker pool into a service.

:func:`create_server` is the one construction point (the app-factory
shape: configuration in, fully wired `ConcurrentServer` out, nothing
global), used by ``repro serve --socket`` and by the concurrency tests
and load bench directly::

    config = ServerConfig(checkpoint="model.npz", index_path="index_dir",
                          host="127.0.0.1", port=0, workers=4)
    with create_server(config) as server:
        host, port = server.address
        ...

Request path: reader thread → :func:`parse_request` → admission
(:class:`MicroBatchScheduler`; full ⇒ immediate ``overloaded`` shed
response with ``retry_after_ms``) → micro-batch → least-loaded worker
process → ordered per-connection delivery.  Control requests
(``{"control": "reload" | "stats"}``) bypass the scheduler: ``reload``
flushes buffered queries (they are served on the old index), hot-swaps
every worker onto the re-read manifest, and acks with worker counts;
``stats`` reports the live counters.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index import validate_k
from repro.serve.core import parse_request, request_id_of
from repro.serve.frontend import Connection, SocketFrontend
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import MicroBatchScheduler


@dataclass
class ServerConfig:
    """Everything the factory needs to wire a concurrent retrieval server."""

    checkpoint: str
    index_path: str
    host: str = "127.0.0.1"
    port: int = 0
    unix_socket: Optional[str] = None  # overrides host/port when set
    workers: int = 2
    max_batch: int = 8
    max_delay_ms: float = 10.0
    queue_depth: int = 64
    default_k: Optional[int] = 5
    mode: str = "exact"  # "exact" | "ann" (needs an index with a quantizer)
    nprobe: int = 8  # cells probed per query in ann mode
    store_root: Optional[str] = None
    max_line_bytes: int = 1 << 20
    enable_test_hooks: bool = False  # fault-injection requests, tests only
    # Per-request deadline, measured from dispatch: a batch not answered in
    # time gets a retryable error and a hung worker is respawned.  None
    # disables the watchdog (the pre-deadline behavior).
    batch_timeout_s: Optional[float] = None
    # How long close() waits for in-flight batches to finish before the
    # stragglers are answered with a shutdown error.
    drain_timeout_s: float = 10.0


@dataclass
class ServerStats:
    """Live counters (the ``{"control": "stats"}`` payload)."""

    requests: int = 0
    responses: int = 0
    errors: int = 0
    shed: int = 0
    batches: int = 0
    crashed_batches: int = 0
    swaps: int = 0


class _Entry:
    """One admitted request riding through scheduler → pool → delivery."""

    __slots__ = ("conn", "seq", "request")

    def __init__(self, conn: Connection, seq: int, request: dict):
        self.conn = conn
        self.seq = seq
        self.request = request


class ConcurrentServer:
    """Socket service: N clients, N workers, micro-batched in between."""

    def __init__(self, config: ServerConfig):  # noqa: D107
        validate_k(config.default_k)
        if config.mode not in ("exact", "ann"):
            raise ValueError(
                f"mode must be 'exact' or 'ann', got {config.mode!r}"
            )
        self.config = config
        self.stats = ServerStats()
        self._stats_lock = threading.Lock()
        self._batch_ids = iter(range(1, 1 << 62))
        self._inflight: Dict[int, List[_Entry]] = {}
        self._inflight_lock = threading.Lock()
        self._swap_lock = threading.Lock()
        self.pool = WorkerPool(
            config.checkpoint,
            config.index_path,
            workers=config.workers,
            default_k=config.default_k,
            max_batch=config.max_batch,
            mode=config.mode,
            nprobe=config.nprobe,
            store_root=config.store_root,
            enable_test_hooks=config.enable_test_hooks,
            batch_timeout_s=config.batch_timeout_s,
            on_batch_done=self._on_batch_done,
            on_batch_failed=self._on_batch_failed,
        )
        self.scheduler = MicroBatchScheduler(
            self._dispatch,
            max_batch=config.max_batch,
            max_delay_ms=config.max_delay_ms,
            max_pending=config.queue_depth,
        )
        address = config.unix_socket or (config.host, config.port)
        self.frontend = SocketFrontend(
            address, self._on_line, max_line_bytes=config.max_line_bytes
        )
        self.address = None

    # ----------------------------------------------------------- lifecycle
    def start(self):
        """Spawn workers, start the scheduler, bind the socket."""
        self.pool.start()
        self.scheduler.start()
        self.address = self.frontend.start()
        return self.address

    def close(self) -> None:
        """Graceful shutdown: stop intake, drain in-flight work, then stop.

        Order matters.  The listener closes first (no new clients), the
        scheduler flushes what it buffered into the pool, and shutdown then
        waits up to ``drain_timeout_s`` for in-flight batches to come back
        — so every admitted request is answered, in per-connection order,
        before the workers and connections go away.  Only batches that
        outlive the drain window get a shutdown error; their workers are
        about to die, so silence is the alternative.
        """
        self.frontend.stop_accepting()
        self.scheduler.close(drain=True)
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if not self._inflight:
                    break
            time.sleep(0.02)
        self.pool.close()
        with self._inflight_lock:
            leftovers = list(self._inflight.items())
            self._inflight.clear()
        for _, entries in leftovers:
            for entry in entries:
                entry.conn.deliver(
                    entry.seq,
                    {
                        "id": entry.request.get("id"),
                        "error": "server shutting down",
                        "retryable": True,
                    },
                )
        self.frontend.close()

    def __enter__(self) -> "ConcurrentServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- intake
    def _on_line(self, conn: Connection, seq: int, line: str) -> None:
        with self._stats_lock:
            self.stats.requests += 1
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict) and "control" in obj:
            self._handle_control(conn, seq, obj)
            return
        try:
            request = parse_request(line, self.config.default_k)
        except ValueError as exc:
            self._count_error()
            conn.deliver(seq, {"id": request_id_of(line), "error": str(exc)})
            return
        entry = _Entry(conn, seq, request)
        if not self.scheduler.offer(entry):
            with self._stats_lock:
                self.stats.shed += 1
            conn.deliver(
                seq,
                {
                    "id": request.get("id"),
                    "error": "overloaded",
                    "retry_after_ms": int(self.config.max_delay_ms) + 1,
                },
            )

    def _handle_control(self, conn: Connection, seq: int, obj: dict) -> None:
        command = obj.get("control")
        rid = obj.get("id")
        if command == "stats":
            conn.deliver(seq, {"id": rid, "stats": self.stats_snapshot()})
        elif command == "reload":
            try:
                result = self.reload_index(obj.get("index"))
            except (RuntimeError, OSError, ValueError) as exc:
                # Everything a swap can raise here: barrier timeout
                # (RuntimeError), queue plumbing (OSError/ValueError).
                # Per-worker open failures travel back as strings inside
                # the ack, not as exceptions.
                self._count_error()
                conn.deliver(seq, {"id": rid, "error": f"reload failed: {exc}"})
                return
            conn.deliver(seq, dict({"id": rid, "reloaded": True}, **result))
        else:
            self._count_error()
            conn.deliver(
                seq,
                {"id": rid, "error": f"unknown control {command!r}"},
            )

    # ------------------------------------------------------------ hot swap
    def reload_index(self, index_path: Optional[str] = None) -> Dict[str, object]:
        """Hot-swap every worker onto ``index_path`` (default: re-read).

        Queries already admitted are flushed first — they finish on the
        old index; queries arriving after the swap see the new one.
        In-flight queries are never dropped.
        """
        path = index_path or self.pool.index_path
        with self._swap_lock:
            self.scheduler.flush_now()
            result = self.pool.swap(path)
        with self._stats_lock:
            self.stats.swaps += 1
        result["index"] = path
        return result

    # ----------------------------------------------------------- dispatch
    def _dispatch(self, entries: Sequence[_Entry]) -> None:
        batch_id = next(self._batch_ids)
        with self._inflight_lock:
            self._inflight[batch_id] = list(entries)
        with self._stats_lock:
            self.stats.batches += 1
        self.pool.submit(batch_id, [e.request for e in entries])

    def _take_inflight(self, batch_id: int) -> List[_Entry]:
        with self._inflight_lock:
            return self._inflight.pop(batch_id, [])

    def _on_batch_done(self, batch_id: int, responses: List[dict]) -> None:
        entries = self._take_inflight(batch_id)
        for i, entry in enumerate(entries):
            if i < len(responses):
                response = responses[i]
            else:  # defensive: a short reply must not strand the client
                response = {
                    "id": entry.request.get("id"),
                    "error": "worker returned no response for this request",
                }
            if "error" in response:
                self._count_error()
            self._finish(entry, response)

    def _on_batch_failed(
        self, batch_id: int, message: str, retryable: bool = False
    ) -> None:
        entries = self._take_inflight(batch_id)
        with self._stats_lock:
            self.stats.crashed_batches += 1
        for entry in entries:
            self._count_error()
            response = {"id": entry.request.get("id"), "error": message}
            if retryable:
                # Deadline misses: the request itself was fine, the server
                # just could not answer in time — clients may resubmit.
                response["retryable"] = True
            self._finish(entry, response)

    def _finish(self, entry: _Entry, response: dict) -> None:
        entry.conn.deliver(entry.seq, response)
        self.scheduler.release(1)
        with self._stats_lock:
            self.stats.responses += 1

    # ------------------------------------------------------------- helpers
    def _count_error(self) -> None:
        with self._stats_lock:
            self.stats.errors += 1

    def stats_snapshot(self) -> Dict[str, int]:
        """Copy of the counters plus scheduler/pool detail."""
        with self._stats_lock:
            snap = dict(self.stats.__dict__)
        sched = self.scheduler.stats
        snap.update(
            workers=self.pool.num_workers,
            worker_crashes=self.pool.crashes,
            deadline_timeouts=self.pool.timeouts,
            pending=self.scheduler.pending,
            flushed_on_size=sched.flushed_on_size,
            flushed_on_deadline=sched.flushed_on_deadline,
        )
        return snap


def create_server(config: ServerConfig) -> ConcurrentServer:
    """The app factory: one wired (not yet started) concurrent server."""
    return ConcurrentServer(config)
