"""Worker pool dispatcher: N processes, per-worker FIFO queues, crash recovery.

The dispatcher owns the process-level concurrency of the service:

* N worker processes (``spawn`` context — no inherited locks or fds, safe
  alongside the front end's threads), each running
  :func:`repro.serve.worker.worker_main` over the same checkpoint and the
  same on-disk sharded index;
* one FIFO task queue **per worker**, so batch → swap ordering is exact
  (everything dispatched before a swap runs on the old index), plus one
  shared result queue drained by a pump thread;
* least-loaded dispatch: a batch goes to the worker with the fewest
  unfinished batches;
* crash containment: each worker claims the batch it is running by
  writing the batch id into a shared-memory slot (a queue message could
  be lost in the feeder thread when the process dies hard), so when a
  process dies the pump fails exactly the claimed-but-unfinished batch
  (error responses, not silence), respawns the slot on the *same* task
  queue — batches still queued behind the dead worker survive — and the
  service keeps running.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as queue_mod
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.serve.worker import NO_CLAIM, worker_main

_POLL_S = 0.1


class _Worker:
    """One worker slot: process + its FIFO task queue + dispatch accounting."""

    __slots__ = (
        "slot",
        "process",
        "task_queue",
        "assigned",
        "ready",
        "start_failures",
    )

    def __init__(self, slot: int, task_queue):
        self.slot = slot
        self.process = None
        self.task_queue = task_queue
        self.assigned: Set[int] = set()  # submitted, response not yet seen
        self.ready = False
        self.start_failures = 0  # consecutive deaths before reporting ready


class WorkerPool:
    """Dispatcher over N spawned retrieval workers sharing one index."""

    def __init__(
        self,
        checkpoint: str,
        index_path: str,
        *,
        workers: int = 2,
        default_k: Optional[int] = 5,
        max_batch: int = 8,
        mode: str = "exact",
        nprobe: int = 8,
        store_root: Optional[str] = None,
        enable_test_hooks: bool = False,
        batch_timeout_s: Optional[float] = None,
        on_batch_done: Callable[[int, List[dict]], None],
        on_batch_failed: Callable[..., None],
    ):  # noqa: D107
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_timeout_s is not None and batch_timeout_s <= 0:
            raise ValueError(f"batch_timeout_s must be > 0, got {batch_timeout_s}")
        self.checkpoint = checkpoint
        self.index_path = index_path
        self.default_k = default_k
        self.max_batch = max_batch
        self.mode = mode
        self.nprobe = nprobe
        self.store_root = store_root
        self.enable_test_hooks = enable_test_hooks
        self.batch_timeout_s = batch_timeout_s
        # batch id → monotonic deadline, ticking from submission (covers
        # queue wait + execution — a per-request deadline, not a CPU one).
        self._deadlines: Dict[int, float] = {}
        self.timeouts = 0
        self._on_batch_done = on_batch_done
        self._on_batch_failed = on_batch_failed
        self._ctx = multiprocessing.get_context("spawn")
        self._result_queue = self._ctx.Queue()
        self._lock = threading.RLock()
        # Shared-memory claim slots: claims[slot] is the batch id the worker
        # is running right now (NO_CLAIM when idle).  Written directly by the
        # worker — unlike a queue put, the write cannot be lost when the
        # process dies hard mid-batch.
        self._claims = self._ctx.Array("q", [NO_CLAIM] * workers, lock=False)
        self._workers: List[_Worker] = [
            _Worker(slot, self._ctx.Queue()) for slot in range(workers)
        ]
        self._swap_tokens = itertools.count(1)
        self._swap_waiters: Dict[int, dict] = {}
        self._ready_event = threading.Event()
        self._stop = False
        self._fatal: Optional[str] = None
        self.crashes = 0
        self._pump = threading.Thread(
            target=self._pump_loop, name="serve-pool-pump", daemon=True
        )

    # ----------------------------------------------------------- lifecycle
    def start(self, timeout: float = 120.0) -> None:
        """Spawn every worker and block until all report ready."""
        for worker in self._workers:
            self._spawn(worker)
        self._pump.start()
        if not self._ready_event.wait(timeout):
            self.close()
            raise RuntimeError(
                f"worker pool did not become ready within {timeout:.0f}s"
            )
        if self._fatal:
            self.close()
            raise RuntimeError(f"worker failed to start: {self._fatal}")

    def _spawn(self, worker: _Worker) -> None:
        worker.ready = False
        worker.process = self._ctx.Process(
            target=worker_main,
            args=(
                worker.slot,
                worker.task_queue,
                self._result_queue,
                self._claims,
                self.checkpoint,
                self.index_path,
                self.default_k,
                self.max_batch,
                self.mode,
                self.nprobe,
                self.store_root,
                self.enable_test_hooks,
            ),
            daemon=True,
            name=f"serve-worker-{worker.slot}",
        )
        worker.process.start()

    def close(self) -> None:
        """Stop the pump, shut every worker down, terminate stragglers."""
        with self._lock:
            if self._stop:
                return
            self._stop = True
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (OSError, ValueError):
                pass
        if self._pump.is_alive():
            self._pump.join(timeout=5)
        for worker in self._workers:
            proc = worker.process
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._result_queue.close()

    @property
    def num_workers(self) -> int:
        """How many worker slots the pool runs."""
        return len(self._workers)

    # ------------------------------------------------------------ dispatch
    def submit(self, batch_id: int, requests: Sequence[dict]) -> None:
        """Queue one batch on the least-loaded worker (FIFO per worker)."""
        with self._lock:
            if self._stop:
                self._on_batch_failed(batch_id, "server shutting down")
                return
            worker = min(self._workers, key=lambda w: len(w.assigned))
            worker.assigned.add(batch_id)
            if self.batch_timeout_s is not None:
                self._deadlines[batch_id] = time.monotonic() + self.batch_timeout_s
        worker.task_queue.put(("batch", batch_id, list(requests)))

    def swap(self, index_path: str, timeout: float = 60.0) -> Dict[str, object]:
        """Hot-swap every worker onto the index at ``index_path``.

        Each worker re-opens the manifest after draining the batches
        already in its queue, so in-flight queries finish on the old index
        and later ones see the new.  Blocks until every live worker acks
        (a worker that crashes mid-swap is counted as such).  Respawned
        workers open ``self.index_path``, which is updated first so crash
        recovery lands on the new index too.
        """
        token = next(self._swap_tokens)
        waiter = {"event": threading.Event(), "pending": set(), "errors": []}
        with self._lock:
            self.index_path = index_path
            waiter["pending"] = {w.slot for w in self._workers}
            self._swap_waiters[token] = waiter
        for worker in self._workers:
            worker.task_queue.put(("swap", index_path, token))
        if not waiter["event"].wait(timeout):
            raise RuntimeError(f"index hot-swap did not complete within {timeout:.0f}s")
        with self._lock:
            self._swap_waiters.pop(token, None)
        return {"workers": self.num_workers, "errors": list(waiter["errors"])}

    # -------------------------------------------------------------- results
    def _pump_loop(self) -> None:
        while not self._stop:
            self._reap_dead_workers()
            self._expire_deadlines()
            try:
                msg = self._result_queue.get(timeout=_POLL_S)
            except queue_mod.Empty:
                continue
            except (OSError, ValueError):  # queue closed during shutdown
                return
            kind = msg[0]
            if kind == "ready":
                with self._lock:
                    worker = self._workers[msg[1]]
                    worker.ready = True
                    worker.start_failures = 0
                    if all(w.ready for w in self._workers):
                        self._ready_event.set()
            elif kind == "fatal":
                with self._lock:
                    self._fatal = msg[2]
                    self._ready_event.set()
            elif kind == "batch":
                _, slot, batch_id, responses = msg
                with self._lock:
                    expired = batch_id not in self._workers[slot].assigned
                    self._workers[slot].assigned.discard(batch_id)
                    self._deadlines.pop(batch_id, None)
                if not expired:
                    # An expired batch was already answered with a deadline
                    # error; this late result has no one waiting for it.
                    self._on_batch_done(batch_id, responses)
            elif kind == "swapped":
                _, slot, token, error = msg
                self._ack_swap(slot, token, error)

    def _ack_swap(self, slot: int, token: int, error) -> None:
        with self._lock:
            waiter = self._swap_waiters.get(token)
            if waiter is None:
                return
            if error:
                waiter["errors"].append(f"worker {slot}: {error}")
            waiter["pending"].discard(slot)
            if not waiter["pending"]:
                waiter["event"].set()

    def _expire_deadlines(self) -> None:
        """Fail every batch past its deadline; kill the worker hung on one.

        A deadline miss on the batch a worker *claims* means that worker is
        stuck (a hang fault, a wedged syscall): the process is terminated so
        the reap/respawn path restores the slot, and queued batches behind
        it survive on the same FIFO queue.  A miss on a merely *queued*
        batch just answers it early — either way the client gets a prompt
        retryable error instead of a connection that never responds.
        """
        if self.batch_timeout_s is None:
            return
        now = time.monotonic()
        expired: List[tuple] = []  # (batch_id, worker, was_running)
        with self._lock:
            if self._stop:
                return
            for batch_id in [b for b, t in self._deadlines.items() if t <= now]:
                del self._deadlines[batch_id]
                for worker in self._workers:
                    if batch_id in worker.assigned:
                        worker.assigned.discard(batch_id)
                        running = self._claims[worker.slot] == batch_id
                        expired.append((batch_id, worker, running))
                        break
            self.timeouts += len(expired)
        for batch_id, worker, running in expired:
            proc = worker.process
            if running and proc is not None and proc.is_alive():
                proc.terminate()  # reaped and respawned by the next pump pass
            self._on_batch_failed(
                batch_id,
                f"deadline exceeded: batch not answered within "
                f"{self.batch_timeout_s:g}s",
                retryable=True,
            )

    def _reap_dead_workers(self) -> None:
        for worker in self._workers:
            proc = worker.process
            if proc is None or proc.is_alive():
                continue
            proc.join()
            with self._lock:
                if self._stop:
                    return
                self.crashes += 1
                # Only the claimed batch died with the process; batches still
                # queued behind it are picked up by the respawn, which reads
                # from the same FIFO queue.  (Guard on `assigned`: the worker
                # may have posted the result and crashed before clearing its
                # claim slot — that batch is already answered.)
                claimed = self._claims[worker.slot]
                self._claims[worker.slot] = NO_CLAIM
                dead = [claimed] if claimed in worker.assigned else []
                worker.assigned.difference_update(dead)
                for batch_id in dead:
                    self._deadlines.pop(batch_id, None)
                # A crash mid-swap must not hang the swap barrier.
                for token, waiter in list(self._swap_waiters.items()):
                    self._ack_swap(worker.slot, token, "worker crashed during swap")
            for batch_id in dead:
                self._on_batch_failed(
                    batch_id, "worker crashed mid-batch; request not served"
                )
            # A worker that keeps dying before it ever comes up will never
            # serve anything: cap the respawn loop instead of storming.
            if not worker.ready:
                worker.start_failures += 1
                if worker.start_failures >= 3:
                    with self._lock:
                        self._fatal = self._fatal or (
                            f"worker {worker.slot} died "
                            f"{worker.start_failures} times before becoming ready"
                        )
                        self._ready_event.set()
                    worker.process = None
                    continue
            self._spawn(worker)
