"""Worker process: one warm pipeline + index pair behind a task queue.

Each worker the pool spawns loads the checkpoint and opens the (sharded)
index read-only from disk — N workers share one on-disk
:class:`~repro.index.ShardedEmbeddingIndex`, each materializing shards
lazily — then loops on its task queue:

* ``("batch", batch_id, requests)`` — claim it by writing the batch id
  into this worker's shared-memory claim slot (a direct write, not a
  queue message: a queue put rides a feeder thread and can vanish when
  the process dies hard, which would leave the dispatcher unable to tell
  which batch died), run the same :meth:`RetrievalServer.handle_batch`
  the stdin service runs, and post the ordered responses;
* ``("swap", index_path, token)`` — re-open the index manifest at
  ``index_path`` and ack.  Because the task queue is FIFO, every batch
  dispatched before the swap is served on the old index and every batch
  after it on the new one — the hot-swap ordering guarantee;
* ``None`` — exit.

A failing batch never kills the worker (errors become per-request error
responses); a *crashing* worker (hard exit mid-batch) is detected by the
pool, which fails the claimed batch and respawns the slot.
"""

from __future__ import annotations

import os
import time


NO_CLAIM = -1  # claim-slot value meaning "no batch running"


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    claims,
    checkpoint: str,
    index_path: str,
    default_k,
    max_batch: int,
    mode: str,
    nprobe: int,
    store_root,
    enable_test_hooks: bool,
) -> None:
    """Entry point for one spawned worker process."""
    try:
        from repro import faults
        from repro.artifacts import ArtifactStore
        from repro.core.trainer import MatchTrainer
        from repro.index import open_index
        from repro.serve.core import RetrievalServer

        trainer = MatchTrainer.load(checkpoint)
        # Degraded open: a corrupt shard quarantines instead of killing the
        # worker, and a corrupt quantizer payload records why so the server
        # can fall back from ANN to the exact path (allow_degraded below).
        index = open_index(index_path, trainer, degraded=True)
        store = ArtifactStore(store_root) if store_root else None
        server = RetrievalServer(
            trainer,
            index,
            batch_size=max_batch,
            default_k=default_k,
            store=store,
            mode=mode,
            nprobe=nprobe,
            allow_degraded=True,
        )
    except Exception as exc:  # pragma: no cover - startup failure path
        # Process boundary: there is no caller to re-raise to, so the
        # exception crosses as a ("fatal", type, message) report — with
        # context, never swallowed — and the pool surfaces it at start().
        result_queue.put(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    result_queue.put(("ready", worker_id))
    while True:
        msg = task_queue.get()
        if msg is None:
            return
        kind = msg[0]
        if kind == "swap":
            _, path, token = msg
            try:
                server.index = open_index(path, trainer, degraded=True)
                result_queue.put(("swapped", worker_id, token, None))
            except Exception as exc:
                # Same boundary rule as startup: the swap ack carries the
                # typed error message back; the old index stays in service.
                result_queue.put(
                    ("swapped", worker_id, token, f"{type(exc).__name__}: {exc}")
                )
            continue
        _, batch_id, requests = msg
        claims[worker_id] = batch_id
        if enable_test_hooks:
            _run_test_hooks(requests)
        try:
            # Fault-injection chokepoint: REPRO_FAULTS specs targeting the
            # `worker.batch` site fire here, inside the real spawned worker
            # — crash faults die claimed (exercising reap/respawn), hang
            # faults stall against the pool's deadline, IO faults surface
            # as the descriptive batch error below.
            faults.hit("worker.batch")
            responses = server.handle_batch(requests)
        except Exception as exc:
            # handle_batch turns per-request failures into error responses
            # already; anything that still escapes fails the batch without
            # poisoning the worker for later batches.
            responses = [
                {"id": r.get("id"), "error": f"batch failed: {exc}"} for r in requests
            ]
        result_queue.put(("batch", worker_id, batch_id, responses))
        claims[worker_id] = NO_CLAIM


def _run_test_hooks(requests) -> None:
    """Fault-injection hooks, honored only under ``enable_test_hooks``.

    ``test_sleep_ms`` holds the batch in flight (deterministic backpressure
    and hot-swap tests); ``test_crash`` hard-exits mid-batch (crash
    recovery tests).  Production servers never enable these.
    """
    for req in requests:
        delay = req.get("test_sleep_ms")
        if isinstance(delay, (int, float)) and delay > 0:
            time.sleep(delay / 1000.0)
        if req.get("test_crash"):
            os._exit(13)
