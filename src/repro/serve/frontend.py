"""Socket front end: N concurrent JSON-lines clients, ordered delivery.

Transport only — the front end knows nothing about retrieval. It accepts
TCP or unix-socket connections, reads newline-framed request lines with a
per-connection byte buffer (so a slowloris client trickling one byte at a
time occupies exactly its own reader thread, never the service), and
hands every non-empty line to the app's handler together with a
per-connection sequence number.

Responses come back through :meth:`Connection.deliver`, which enforces
the protocol's ordering contract per connection: response ``seq`` N is
written only after 0..N-1, writes are serialized under the connection's
lock (one complete JSON line at a time — no interleaving), and writes to
a client that disconnected are dropped without disturbing anyone else.

Framing faults are contained per connection: a line longer than
``max_line_bytes`` gets an in-order error response and the connection is
closed once that response drains (framing is lost — resyncing on the
next newline would silently misparse); EOF with a non-empty partial line
is served as a final request, matching the stdin loop's
final-line-without-newline behavior.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Callable, Optional, Tuple, Union

Address = Union[Tuple[str, int], str]  # ("host", port) or unix socket path

_RECV_BYTES = 65536


class Connection:
    """One client connection: framed reads, ordered serialized writes."""

    def __init__(self, sock: socket.socket, peer: str):  # noqa: D107
        self.sock = sock
        self.peer = peer
        self._lock = threading.Lock()
        self._next_seq = 0  # next seq to write
        self._seq = 0  # next seq to assign
        self._ready = {}  # seq -> response waiting for its turn
        self._close_after: Optional[int] = None
        self._dead = False

    def next_seq(self) -> int:
        """Assign the next request sequence number (reader thread only)."""
        seq = self._seq
        self._seq += 1
        return seq

    def deliver(self, seq: int, response: dict) -> None:
        """Write ``response`` as one JSON line, in sequence order.

        Out-of-order completions (batches finishing on different workers)
        park here until every earlier seq has been written.  Writes to a
        dead connection are dropped — the work is already done, there is
        just no one left to tell.
        """
        payload = (json.dumps(response) + "\n").encode("utf-8")
        with self._lock:
            self._ready[seq] = payload
            while self._next_seq in self._ready:
                data = self._ready.pop(self._next_seq)
                if not self._dead:
                    try:
                        self.sock.sendall(data)
                    except OSError:
                        self._dead = True
                self._next_seq += 1
            if self._close_after is not None and self._next_seq > self._close_after:
                self._shutdown_locked()

    def close_after(self, seq: int) -> None:
        """Close the connection once responses through ``seq`` are written."""
        with self._lock:
            self._close_after = seq
            if self._next_seq > seq:
                self._shutdown_locked()

    def close(self) -> None:
        """Drop the connection now (reader EOF or server shutdown)."""
        with self._lock:
            self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        self._dead = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketFrontend:
    """Listener + per-connection reader threads over TCP or a unix socket."""

    def __init__(
        self,
        address: Address,
        on_line: Callable[[Connection, int, str], None],
        *,
        max_line_bytes: int = 1 << 20,
        backlog: int = 128,
    ):  # noqa: D107
        self.address = address
        self.on_line = on_line
        self.max_line_bytes = max_line_bytes
        self.backlog = backlog
        self.bound_address: Optional[Address] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns = set()
        self._conns_lock = threading.Lock()
        self._stop = False

    # ----------------------------------------------------------- lifecycle
    def start(self) -> Address:
        """Bind, listen, and start accepting; returns the bound address."""
        if isinstance(self.address, str):
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.address)
            self.bound_address = self.address
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self.address)
            self.bound_address = listener.getsockname()
        listener.listen(self.backlog)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self.bound_address

    def stop_accepting(self) -> None:
        """Close the listener; live connections keep reading and writing.

        First phase of graceful shutdown: no new clients get in, while
        responses already owed drain through the existing connections.
        """
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None and self._accept_thread.is_alive():
            self._accept_thread.join(timeout=5)

    def close(self) -> None:
        """Stop accepting and drop every live connection."""
        self._stop = True
        self.stop_accepting()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()

    # ------------------------------------------------------------- accept
    def _accept_loop(self) -> None:
        while not self._stop:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn = Connection(sock, str(addr))
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name=f"serve-client-{conn.peer}",
                daemon=True,
            ).start()

    # -------------------------------------------------------------- reader
    def _reader_loop(self, conn: Connection) -> None:
        buf = bytearray()
        try:
            while not self._stop:
                newline = buf.find(b"\n")
                while newline >= 0:
                    line = buf[:newline].decode("utf-8", "replace")
                    del buf[: newline + 1]
                    self._handle_line(conn, line)
                    newline = buf.find(b"\n")
                if len(buf) > self.max_line_bytes:
                    # Framing is unrecoverable: answer in order, then hang up.
                    seq = conn.next_seq()
                    conn.deliver(
                        seq,
                        {
                            "id": None,
                            "error": f"request line exceeds {self.max_line_bytes} "
                            "bytes; closing connection",
                        },
                    )
                    conn.close_after(seq)
                    return
                try:
                    chunk = conn.sock.recv(_RECV_BYTES)
                except OSError:
                    return  # client vanished (or server closed the socket)
                if not chunk:
                    # EOF: a trailing request without its newline still counts,
                    # exactly like the stdin loop at end of input.  Responses
                    # already owed keep flowing (the client may have only
                    # half-closed); the socket is dropped once they drain.
                    if buf:
                        self._handle_line(conn, buf.decode("utf-8", "replace"))
                    if conn._seq:
                        conn.close_after(conn._seq - 1)
                    else:
                        conn.close()
                    return
                buf += chunk
        finally:
            with self._conns_lock:
                self._conns.discard(conn)

    def _handle_line(self, conn: Connection, line: str) -> None:
        line = line.strip()
        if not line:
            return
        self.on_line(conn, conn.next_seq(), line)
