"""JSON-lines retrieval core: protocol parsing and the batched handler.

The paper's end product is a matcher that ranks source candidates for
binary queries; this module turns the retrieval stack into a service. One
warm :class:`~repro.core.pipeline.MatcherPipeline` (compilation pipeline +
optional artifact store) and one warm index — monolithic
:class:`~repro.index.EmbeddingIndex` or lazily-loaded
:class:`~repro.index.ShardedEmbeddingIndex` — are shared across every
request of the process lifetime, and pipelined requests are batched so Q
queued queries cost one batched encoder pass plus one tiled pair-head
pass instead of Q of each (see :meth:`EmbeddingIndex.topk_batch`).

This is both the whole service in stdin mode (``repro serve``) and the
protocol/handler layer of the concurrent socket service
(:mod:`repro.serve.app`): worker processes run :meth:`handle_batch` on
micro-batches the scheduler formed, and the front end validates lines
with :func:`parse_request` before admitting them.

Protocol (one JSON object per line, responses in request order)::

    → {"id": "q1", "binary_b64": "<base64 bytes>", "k": 3}
    → {"id": "q2", "source": "int f() { ... }", "language": "c"}
    ← {"id": "q1", "hits": [{"rank": 1, "index": 4, "score": 0.93,
                             "key": "…", "meta": {…}}, …]}
    ← {"id": "q2", "hits": [...]}

A request is either a binary (``binary_b64``, base64-encoded bytes, run
through the decompile half of the pipeline) or a source file (``source`` +
``language``, run through the front-end half).  ``k`` bounds the hit list
(default: the server's ``default_k``; ``null`` returns the full ranking).
Malformed requests produce ``{"id": …, "error": "…"}`` responses — the
server keeps serving.
"""

from __future__ import annotations

import base64
import binascii
import io
import json
import os
import select
from dataclasses import dataclass
from typing import IO, Iterator, List, Optional, Sequence, Tuple

from repro.core.pipeline import MatcherPipeline
from repro.core.trainer import MatchTrainer
from repro.index import validate_k

_QUERY_FIELDS = ("binary_b64", "source")


def parse_request(line: str, default_k: Optional[int]) -> dict:
    """One JSON line → validated request dict (raises ValueError).

    The single protocol validator, shared by the stdin server and the
    socket front end so both reject exactly the same malformed requests.
    Unknown extra fields are preserved on the returned dict; ``k``
    defaults to ``default_k`` when the request omits it.
    """
    try:
        req = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"bad JSON: {exc}") from exc
    if not isinstance(req, dict):
        raise ValueError("request must be a JSON object")
    present = [f for f in _QUERY_FIELDS if f in req]
    if len(present) != 1:
        raise ValueError(
            "request needs exactly one of 'binary_b64' / 'source', "
            f"got {present or 'neither'}"
        )
    if "source" in req and not isinstance(req.get("language"), str):
        raise ValueError("'source' requests need a 'language' string")
    k = req.get("k", default_k)
    if k is not None and (isinstance(k, bool) or not isinstance(k, int) or k < 1):
        raise ValueError(f"'k' must be a positive integer or null, got {k!r}")
    req["k"] = k
    return req


def request_id_of(line: str):
    """Best-effort ``id`` echo for a line that failed validation."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    return obj.get("id") if isinstance(obj, dict) else None


def _fd_ready(fd: int) -> bool:
    # A closed/invalid fd can deliver no further input: report it as
    # not-pending so the loop flushes what it holds instead of stalling a
    # partial batch behind input that will never arrive (a blanket
    # "return True" here once masked exactly that).
    try:
        ready, _, _ = select.select([fd], [], [], 0)
    except (OSError, ValueError):
        return False
    return bool(ready)


def _lines_with_pending(stream) -> Iterator[Tuple[str, bool]]:
    """Yield ``(line, input_pending)`` pairs from a request stream.

    ``input_pending`` is False exactly when no further complete or partial
    input is immediately available, which is the server's cue to flush a
    partial batch: a request/response client that pipelined fewer than a
    full batch gets its responses instead of a deadlock.

    Selectable streams (pipes, sockets, files) are read directly from the
    fd with our own line buffer — stdlib text streams read ahead into a
    hidden buffer that ``select`` cannot see, which would misreport
    drained-into-buffer lines as "no input pending" and degrade pipelined
    traffic to batches of one.  Non-selectable streams (StringIO, select-
    less platforms) fall back to plain iteration with pending always True,
    relying on batch-size/EOF flushes.
    """
    try:
        fd = stream.fileno()
        select.select([fd], [], [], 0)
    except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
        for line in stream:
            yield line, True
        return
    buf = bytearray()
    eof = False
    while True:
        newline = buf.find(b"\n")
        while newline >= 0:
            line = buf[:newline].decode("utf-8", "replace")
            del buf[: newline + 1]
            newline = buf.find(b"\n")
            yield line, newline >= 0 or _fd_ready(fd)
        if eof:
            if buf:
                yield buf.decode("utf-8", "replace"), False
            return
        chunk = os.read(fd, 65536)
        if chunk:
            buf += chunk
        else:
            eof = True


@dataclass
class ServeStats:
    """What one :meth:`RetrievalServer.serve` loop handled."""

    requests: int = 0
    batches: int = 0
    errors: int = 0


class RetrievalServer:
    """Batched request loop over one warm pipeline + index pair."""

    def __init__(
        self,
        trainer: MatchTrainer,
        index,
        *,
        batch_size: int = 8,
        default_k: Optional[int] = 5,
        store=None,
        mode: str = "exact",
        nprobe: int = 8,
        allow_degraded: bool = False,
    ):  # noqa: D107
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        # Same rule requests are held to: a bad --top-k should fail at
        # startup, not surface as a per-request "client" error.
        validate_k(default_k)
        if mode not in ("exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        self.ann_fallback: Optional[str] = None
        if mode == "ann":
            if nprobe < 1:
                raise ValueError(f"nprobe must be >= 1, got {nprobe}")
            # Fail at startup, not per request: ANN needs a sharded index
            # whose manifest carries a trained coarse quantizer.
            if getattr(index, "quantizer", None) is None:
                corrupt = getattr(index, "quantizer_error", None)
                if allow_degraded and corrupt:
                    # The quantizer *payload* is corrupt (a degraded-mode
                    # index records why).  Serving exact answers flagged
                    # degraded beats refusing to serve; a never-trained
                    # quantizer is still a configuration error below.
                    self.ann_fallback = corrupt
                    mode = "exact"
                else:
                    raise ValueError(
                        "mode='ann' needs a sharded index with a trained coarse "
                        "quantizer (build with `repro index build --shard-size N "
                        "--cells K`)"
                    )
        self.index = index
        self.batch_size = batch_size
        self.default_k = default_k
        self.mode = mode
        self.nprobe = nprobe
        self.pipeline = MatcherPipeline(trainer, store=store)
        self.stats = ServeStats()

    # ----------------------------------------------------------- requests
    def _parse(self, line: str) -> dict:
        """One JSON line → validated request dict (raises ValueError)."""
        return parse_request(line, self.default_k)

    def _query_graph(self, req: dict):
        """Request → query program graph (raises ValueError)."""
        name = str(req.get("id", "query"))
        if "binary_b64" in req:
            if not isinstance(req["binary_b64"], str):
                raise ValueError("'binary_b64' must be a base64 string")
            try:
                raw = base64.b64decode(req["binary_b64"], validate=True)
            except (binascii.Error, ValueError) as exc:
                raise ValueError(f"bad base64 in 'binary_b64': {exc}") from exc
            try:
                return self.pipeline.graph_of_binary(raw, name=name)
            except Exception as exc:
                raise ValueError(f"binary does not decompile: {exc}") from exc
        try:
            return self.pipeline.graph_of_source(req["source"], req["language"])
        except Exception as exc:
            raise ValueError(f"source does not compile: {exc}") from exc

    def _degraded_info(self) -> dict:
        """Degradation flags to merge into this batch's hit responses.

        Empty in the healthy case.  Non-empty when corrupt shards were
        quarantined (answers come from the surviving ``coverage`` fraction
        of the corpus) or a corrupt quantizer forced ANN back onto the
        exact path — results are still correct over what remains, and the
        client can see they are partial.
        """
        quarantined = getattr(self.index, "quarantined", None)
        if not quarantined and self.ann_fallback is None:
            return {}
        info: dict = {"degraded": True}
        coverage = getattr(self.index, "coverage", None)
        if coverage is not None:
            info["coverage"] = round(coverage(), 6)
        if self.ann_fallback is not None:
            info["ann_fallback"] = "exact"
        return info

    # ------------------------------------------------------------ serving
    def handle_batch(self, requests: Sequence[dict]) -> List[dict]:
        """Responses (in request order) for one batch of parsed requests.

        Per-request failures turn into error responses; the surviving
        queries still share one :meth:`topk_batch` pass.
        """
        responses: List[Optional[dict]] = [None] * len(requests)
        graphs, slots = [], []
        for i, req in enumerate(requests):
            try:
                graphs.append(self._query_graph(req))
                slots.append(i)
            except ValueError as exc:
                responses[i] = {"id": req.get("id"), "error": str(exc)}
                self.stats.errors += 1
        if graphs:
            # One batched pass ranks the whole batch, bounded by the
            # largest k any request in it asked for (None = full ranking);
            # per-request k then only trims the shared hit lists.
            wanted = [requests[slot]["k"] for slot in slots]
            batch_k = None if any(w is None for w in wanted) else max(wanted)
            if self.mode == "ann":
                rankings = self.index.topk_batch(
                    graphs, k=batch_k, mode="ann", nprobe=self.nprobe
                )
            else:
                # The default call stays verbatim: exact serving must keep
                # bit parity with the pre-ANN service.
                rankings = self.index.topk_batch(graphs, k=batch_k)
            # Computed *after* the batched pass: a shard quarantined while
            # answering this very batch is already reflected in the flags.
            degraded = self._degraded_info()
            for slot, hits in zip(slots, rankings):
                req = requests[slot]
                if req["k"] is not None:
                    hits = hits[: req["k"]]
                responses[slot] = {
                    "id": req.get("id"),
                    **degraded,
                    "hits": [
                        {
                            "rank": rank,
                            "index": hit.index,
                            "score": hit.score,
                            "key": hit.key,
                            "meta": hit.meta,
                        }
                        for rank, hit in enumerate(hits, 1)
                    ],
                }
        return [r for r in responses if r is not None]

    def serve(self, in_stream: IO[str], out_stream: IO[str]) -> ServeStats:
        """Read JSON-lines requests until EOF, writing JSON-lines responses.

        Requests are buffered and flushed ``batch_size`` at a time — and
        whenever the input runs dry (so a request/response client that
        pipelined fewer than a full batch is answered immediately, not
        deadlocked) and at EOF.  Responses always come back in request
        order; a line that fails to parse flushes the pending batch first
        so ordering holds.

        ``in_stream`` must be unread: selectable streams are consumed
        directly from the underlying fd (see :func:`_lines_with_pending`),
        so lines another reader already pulled into a Python-level stream
        buffer would be skipped.

        Returns the stats for this loop alone; ``self.stats`` is reset on
        entry.
        """
        self.stats = ServeStats()
        batch: List[dict] = []

        def flush() -> None:
            if not batch:
                return
            for response in self.handle_batch(batch):
                out_stream.write(json.dumps(response) + "\n")
            out_stream.flush()
            self.stats.batches += 1
            batch.clear()

        for line, pending in _lines_with_pending(in_stream):
            line = line.strip()
            if not line:
                if not pending:
                    flush()
                continue
            self.stats.requests += 1
            try:
                batch.append(self._parse(line))
            except ValueError as exc:
                flush()
                rid = request_id_of(line)
                out_stream.write(json.dumps({"id": rid, "error": str(exc)}) + "\n")
                out_stream.flush()
                self.stats.errors += 1
                continue
            if len(batch) >= self.batch_size or not pending:
                flush()
        flush()
        return self.stats
