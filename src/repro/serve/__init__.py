"""The retrieval service: stdin JSON-lines core + concurrent socket front.

Two ways to run the same protocol:

* :class:`RetrievalServer` (``repro serve`` < requests.jsonl) — one
  process, one warm pipeline/index pair, batched pipelined requests;
* :func:`create_server` + :class:`ServerConfig` (``repro serve
  --socket``) — a socket front end, a micro-batching scheduler with a
  latency deadline, N worker processes sharing one on-disk sharded
  index, admission control, crash recovery and index hot-swap.

See ``docs/serving.md`` for the protocol and operational semantics.
"""

from repro.serve.app import (
    ConcurrentServer,
    ServerConfig,
    ServerStats,
    create_server,
)
from repro.serve.core import (
    RetrievalServer,
    ServeStats,
    parse_request,
    request_id_of,
)
from repro.serve.frontend import Connection, SocketFrontend
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import MicroBatchScheduler, SchedulerStats

__all__ = [
    "ConcurrentServer",
    "Connection",
    "MicroBatchScheduler",
    "RetrievalServer",
    "SchedulerStats",
    "ServeStats",
    "ServerConfig",
    "ServerStats",
    "SocketFrontend",
    "WorkerPool",
    "create_server",
    "parse_request",
    "request_id_of",
]
