"""``repro.graphs`` — ProGraML-style heterogeneous program graphs."""

from repro.graphs.batch import GraphBatch, batch_graphs
from repro.graphs.programl import CALL, CONTROL, DATA, ProgramGraph, build_graph

__all__ = [
    "ProgramGraph",
    "build_graph",
    "CONTROL",
    "DATA",
    "CALL",
    "GraphBatch",
    "batch_graphs",
]
