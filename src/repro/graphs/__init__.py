"""``repro.graphs`` — ProGraML-style heterogeneous program graphs."""

from repro.graphs.batch import GraphBatch, batch_graphs
from repro.graphs.programl import CALL, CONTROL, DATA, ProgramGraph, build_graph
from repro.graphs.serialize import (
    graph_from_arrays,
    graph_to_arrays,
    load_graph,
    save_graph,
)

__all__ = [
    "ProgramGraph",
    "build_graph",
    "CONTROL",
    "DATA",
    "CALL",
    "GraphBatch",
    "batch_graphs",
    "graph_to_arrays",
    "graph_from_arrays",
    "save_graph",
    "load_graph",
]
