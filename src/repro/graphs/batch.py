"""Graph batching: merge program graphs into one disjoint-union batch.

The GNN runs segment operations over a single node space; batching several
graphs (e.g. both sides of every pair in a minibatch) amortizes the Python
overhead per the vectorize-everything guidance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.programl import RELATIONS, ProgramGraph
from repro.nn.segments import ConvPlan, SegmentIndex, build_conv_plan


@dataclass
class GraphBatch:
    """A disjoint union of graphs with per-node graph ids.

    The batch also memoizes the message-passing layout (:meth:`conv_plans`)
    and the per-graph segment sort (:meth:`graph_index`): training reuses the
    same batches every epoch, so the sorts are paid once per batch, not once
    per step.
    """

    num_graphs: int
    num_nodes: int
    node_texts: List[str]
    node_full_texts: List[str]
    node_types: np.ndarray  # (N,)
    graph_ids: np.ndarray  # (N,)
    edges: Dict[str, np.ndarray]  # rel -> (2, E)
    positions: Dict[str, np.ndarray]  # rel -> (E,)
    _conv_plans: Optional[Dict[str, ConvPlan]] = field(
        default=None, repr=False, compare=False
    )
    _graph_index: Optional[SegmentIndex] = field(
        default=None, repr=False, compare=False
    )

    def conv_plans(self) -> Dict[str, ConvPlan]:
        """Per-relation :class:`ConvPlan` (self-loops added), built lazily."""
        if self._conv_plans is None:
            self._conv_plans = {
                rel: build_conv_plan(
                    self.edges.get(rel), self.positions.get(rel), self.num_nodes
                )
                for rel in self.edges
            }
        return self._conv_plans

    def graph_index(self) -> SegmentIndex:
        """Sorted segment layout of ``graph_ids`` for pooling reductions."""
        if self._graph_index is None:
            self._graph_index = SegmentIndex(self.graph_ids, self.num_graphs)
        return self._graph_index


def batch_relations(graphs: Sequence[ProgramGraph]) -> List[str]:
    """The union of relations a batch must carry, deterministically ordered.

    The base :data:`RELATIONS` always lead (zero-edge when absent, so
    models built for the three-relation schema keep working on any
    batch); extra relations — e.g. the analysis-derived ``dataflow`` /
    ``callsummary`` — follow in sorted order.
    """
    extra = sorted(
        {rel for g in graphs for rel in g.edges} - set(RELATIONS)
    )
    return list(RELATIONS) + extra


def batch_graphs(graphs: Sequence[ProgramGraph]) -> GraphBatch:
    """Concatenate graphs with node-index offsets."""
    relations = batch_relations(graphs)
    node_texts: List[str] = []
    node_full_texts: List[str] = []
    node_types: List[int] = []
    graph_ids: List[np.ndarray] = []
    edges: Dict[str, List[np.ndarray]] = {r: [] for r in relations}
    positions: Dict[str, List[np.ndarray]] = {r: [] for r in relations}

    offset = 0
    for gi, g in enumerate(graphs):
        node_texts.extend(g.node_texts)
        node_full_texts.extend(g.node_full_texts)
        node_types.extend(g.node_types)
        graph_ids.append(np.full(g.num_nodes, gi, dtype=np.int64))
        for rel in relations:
            e = g.edges.get(rel)
            if e is not None and e.shape[1]:
                edges[rel].append(e + offset)
                positions[rel].append(g.positions[rel])
        offset += g.num_nodes

    merged_edges = {}
    merged_pos = {}
    for rel in relations:
        if edges[rel]:
            merged_edges[rel] = np.concatenate(edges[rel], axis=1)
            merged_pos[rel] = np.concatenate(positions[rel])
        else:
            merged_edges[rel] = np.zeros((2, 0), dtype=np.int64)
            merged_pos[rel] = np.zeros(0, dtype=np.int64)

    return GraphBatch(
        num_graphs=len(graphs),
        num_nodes=offset,
        node_texts=node_texts,
        node_full_texts=node_full_texts,
        node_types=np.asarray(node_types, dtype=np.int64),
        graph_ids=np.concatenate(graph_ids) if graph_ids else np.zeros(0, dtype=np.int64),
        edges=merged_edges,
        positions=merged_pos,
    )
