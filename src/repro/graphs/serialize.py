"""ProgramGraph ⇄ flat array dict (de)serialization.

Graphs are what every downstream consumer (tokenizer, GNN, index)
actually reads, so the artifact store persists them directly instead of
re-deriving them from IR on every load.  The encoding is a flat
``{name: ndarray}`` mapping — the same shape ``np.savez`` and the store's
``.npz`` entries use — with string features carried in one JSON payload
array.  Round-trips are exact: the restored graph has an identical
:func:`repro.index.graph_fingerprint`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

from repro.graphs.programl import ProgramGraph

PathLike = Union[str, Path]

_META = "meta"


def graph_to_arrays(graph: ProgramGraph, prefix: str = "") -> Dict[str, np.ndarray]:
    """Encode a graph as three ``{prefix+key: ndarray}`` entries.

    ``meta`` (a JSON payload: names, node feature strings, relation edge
    counts), ``node_types``, and one packed ``edges`` matrix of shape
    ``(3, total_edges)`` — rows source, dest, position — concatenated in
    relation order.  Packing everything into three arrays keeps archive
    open/read overhead flat no matter how many relations exist; warm
    corpus loads are the consumer that cares.
    """
    rels = sorted(graph.edges)
    meta = {
        # v2: analysis-derived relations (dataflow/callsummary) and the
        # summary node type may appear; the decoder is schema-agnostic
        # either way, so v1 archives still load.
        "version": 2,
        "name": graph.name,
        "source_language": graph.source_language,
        "node_texts": graph.node_texts,
        "node_full_texts": graph.node_full_texts,
        "relations": [[rel, int(graph.edges[rel].shape[1])] for rel in rels],
    }
    blocks = []
    for rel in rels:
        edges = np.ascontiguousarray(graph.edges[rel], dtype=np.int64)
        pos = graph.positions.get(rel)
        if pos is None:
            pos = np.zeros(edges.shape[1], dtype=np.int64)
        blocks.append(np.vstack([edges, np.asarray(pos, dtype=np.int64).reshape(1, -1)]))
    packed = (
        np.concatenate(blocks, axis=1) if blocks else np.zeros((3, 0), dtype=np.int64)
    )
    return {
        prefix + _META: np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        prefix + "node_types": np.asarray(graph.node_types, dtype=np.int64),
        prefix + "edges": packed,
    }


def graph_from_arrays(arrays: Mapping[str, np.ndarray], prefix: str = "") -> ProgramGraph:
    """Rebuild a graph encoded by :func:`graph_to_arrays`.

    ``arrays`` may be a plain dict or an open ``np.load`` archive; only keys
    under ``prefix`` are read, so several graphs can share one archive.
    """
    key = prefix + _META
    if key not in arrays:
        raise ValueError(f"no serialized graph under prefix {prefix!r}")
    meta = json.loads(bytes(np.asarray(arrays[key], dtype=np.uint8).tobytes()).decode("utf-8"))
    graph = ProgramGraph(
        meta["name"],
        node_texts=list(meta["node_texts"]),
        node_full_texts=list(meta["node_full_texts"]),
        node_types=[int(t) for t in arrays[prefix + "node_types"]],
        source_language=meta["source_language"],
    )
    packed = np.asarray(arrays[prefix + "edges"], dtype=np.int64).reshape(3, -1)
    offset = 0
    for rel, count in meta["relations"]:
        block = packed[:, offset : offset + count]
        offset += count
        graph.edges[rel] = block[:2]
        graph.positions[rel] = block[2]
    return graph


def save_graph(path: PathLike, graph: ProgramGraph) -> str:
    """Persist one graph to a standalone ``.npz``; returns the written path."""
    path = str(path)
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez_compressed(path, **graph_to_arrays(graph))
    return path


def load_graph(path: PathLike) -> ProgramGraph:
    """Load a graph saved by :func:`save_graph`."""
    with np.load(str(path)) as archive:
        return graph_from_arrays(archive)
