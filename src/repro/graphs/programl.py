"""IR module → heterogeneous program graph (the ProGraML substitute).

Follows Cummins et al. (2020): three node types — **instruction**,
**variable**, **constant** — and three edge relations — **control** (block
order and branches), **data** (def→use through variable/constant nodes,
with operand ``position``), and **call** (call site → callee entry, returns
→ call site).  Every node carries two feature strings:

* ``text`` — the opcode / type only (the ProGraML default feature),
* ``full_text`` — the complete printed instruction (the richer feature
  GraphBinMatch found superior; Table VIII ablates the two).

With ``build_graph(..., dataflow=True)`` two *analysis-derived* relations
join the three structural ones — **dataflow** (cross-block def→use chains)
and **callsummary** (call site → interprocedural callee summary, a fourth
node type) — computed by :mod:`repro.ir.analysis`; see ``docs/analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.module import Argument, BasicBlock, Constant, Function, Instruction, Module, Value
from repro.ir.printer import Namer, instruction_text
from repro.ir.types import VOID

CONTROL = "control"
DATA = "data"
CALL = "call"
#: The paper's three structural relations — what every graph carries.
RELATIONS = (CONTROL, DATA, CALL)

#: Analysis-derived relations, emitted only with ``build_graph(dataflow=True)``:
#: ``dataflow`` edges connect a definition directly to each *cross-block* use
#: (the def→use chains that survive register renaming and block reordering);
#: ``callsummary`` edges connect every call site to its callee's
#: interprocedural summary node (mod/ref/purity — see
#: :mod:`repro.ir.analysis.callgraph`).
DATAFLOW = "dataflow"
CALLSUMMARY = "callsummary"
EXTENDED_RELATIONS = RELATIONS + (DATAFLOW, CALLSUMMARY)

NODE_INSTRUCTION = 0
NODE_VARIABLE = 1
NODE_CONSTANT = 2
#: Per-function summary nodes (one per called function, ``dataflow`` mode).
NODE_SUMMARY = 3


@dataclass
class ProgramGraph:
    """A heterogeneous program graph.

    ``edges[rel]`` is an int64 array of shape ``(2, E)`` (source, dest);
    ``positions[rel]`` the matching operand-position feature of shape
    ``(E,)``.
    """

    name: str
    node_texts: List[str] = field(default_factory=list)
    node_full_texts: List[str] = field(default_factory=list)
    node_types: List[int] = field(default_factory=list)
    edges: Dict[str, np.ndarray] = field(default_factory=dict)
    positions: Dict[str, np.ndarray] = field(default_factory=dict)
    source_language: str = ""

    @property
    def num_nodes(self) -> int:
        """Node count."""
        return len(self.node_texts)

    @property
    def num_edges(self) -> int:
        """Total edge count across relations."""
        return sum(e.shape[1] for e in self.edges.values())

    def edge_count(self, rel: str) -> int:
        """Edges in one relation."""
        return self.edges[rel].shape[1] if rel in self.edges else 0


class _GraphBuilder:
    def __init__(self, name: str, relations: Tuple[str, ...] = RELATIONS):  # noqa: D107
        self.graph = ProgramGraph(name)
        self._edge_lists: Dict[str, List[Tuple[int, int, int]]] = {r: [] for r in relations}
        self._const_nodes: Dict[Tuple[int, str], int] = {}

    def add_node(self, text: str, full_text: str, node_type: int) -> int:
        g = self.graph
        g.node_texts.append(text)
        g.node_full_texts.append(full_text)
        g.node_types.append(node_type)
        return len(g.node_texts) - 1

    def add_edge(self, rel: str, src: int, dst: int, position: int = 0) -> None:
        self._edge_lists[rel].append((src, dst, position))

    def const_node(self, c: Constant) -> int:
        key = (c.value, str(c.type))
        if key not in self._const_nodes:
            self._const_nodes[key] = self.add_node(
                str(c.type), f"{c.type} {c.value}", NODE_CONSTANT
            )
        return self._const_nodes[key]

    def finish(self) -> ProgramGraph:
        g = self.graph
        for rel, triples in self._edge_lists.items():
            if triples:
                arr = np.asarray(triples, dtype=np.int64).T
                g.edges[rel] = arr[:2]
                g.positions[rel] = arr[2]
            else:
                g.edges[rel] = np.zeros((2, 0), dtype=np.int64)
                g.positions[rel] = np.zeros(0, dtype=np.int64)
        return g


def build_graph(
    module: Module, name: Optional[str] = None, *, dataflow: bool = False
) -> ProgramGraph:
    """Construct the heterogeneous graph for an IR module.

    With ``dataflow=True`` the graph additionally carries the
    analysis-derived ``dataflow`` and ``callsummary`` relations (plus
    their summary nodes).  The three structural relations are built
    identically either way — a ``dataflow`` graph restricted to
    :data:`RELATIONS` is byte-for-byte the clean graph.
    """
    b = _GraphBuilder(
        name or module.name, EXTENDED_RELATIONS if dataflow else RELATIONS
    )
    b.graph.source_language = module.source_language

    instr_node: Dict[int, int] = {}
    var_node: Dict[int, int] = {}
    fn_entry_node: Dict[str, int] = {}
    fn_ret_nodes: Dict[str, List[int]] = {}

    # --- pass 1: nodes ---------------------------------------------------
    for fn in module.functions:
        if fn.is_declaration:
            # one node stands for the external function
            idx = b.add_node(
                "external", f"declare {fn.return_type} @{fn.name}", NODE_INSTRUCTION
            )
            fn_entry_node[fn.name] = idx
            continue
        namer = Namer()
        namer.assign_all(fn)
        for arg in fn.args:
            var_node[id(arg)] = b.add_node(
                str(arg.type), f"{arg.type} %{arg.name}", NODE_VARIABLE
            )
        rets: List[int] = []
        for blk in fn.blocks:
            for instr in blk.instructions:
                full = instruction_text(instr, namer)
                idx = b.add_node(instr.opcode, full, NODE_INSTRUCTION)
                instr_node[id(instr)] = idx
                if instr.type != VOID:
                    var_node[id(instr)] = b.add_node(
                        str(instr.type), f"{instr.type} {namer.name(instr)}", NODE_VARIABLE
                    )
                if instr.opcode == "ret":
                    rets.append(idx)
        fn_entry_node[fn.name] = instr_node[id(fn.entry.instructions[0])]
        fn_ret_nodes[fn.name] = rets

    # --- pass 2: edges ---------------------------------------------------
    for fn in module.defined_functions():
        for blk in fn.blocks:
            instrs = blk.instructions
            # control: straight line
            for a, nxt in zip(instrs, instrs[1:]):
                b.add_edge(CONTROL, instr_node[id(a)], instr_node[id(nxt)], 0)
            # control: branch targets
            term = blk.terminator
            if term is not None:
                for k, succ in enumerate(term.blocks if term.opcode != "phi" else []):
                    b.add_edge(
                        CONTROL,
                        instr_node[id(term)],
                        instr_node[id(succ.instructions[0])],
                        k,
                    )
            for instr in instrs:
                # data: producer → its variable node
                if instr.type != VOID and id(instr) in var_node:
                    b.add_edge(DATA, instr_node[id(instr)], var_node[id(instr)], 0)
                # data: operands → this instruction
                for pos, op in enumerate(instr.operands):
                    if isinstance(op, Constant):
                        b.add_edge(DATA, b.const_node(op), instr_node[id(instr)], pos)
                    elif id(op) in var_node:
                        b.add_edge(DATA, var_node[id(op)], instr_node[id(instr)], pos)
                # call edges
                if instr.opcode == "call":
                    callee = instr.extra["callee"]
                    if callee in fn_entry_node:
                        b.add_edge(CALL, instr_node[id(instr)], fn_entry_node[callee], 0)
                        for r in fn_ret_nodes.get(callee, []):
                            b.add_edge(CALL, r, instr_node[id(instr)], 1)

    if dataflow:
        _add_analysis_edges(b, module, instr_node)
    return b.finish()


def _add_analysis_edges(
    b: _GraphBuilder, module: Module, instr_node: Dict[int, int]
) -> None:
    """Emit the ``dataflow`` and ``callsummary`` relations (pass 3).

    ``dataflow`` edges are the cross-block def→use pairs of
    :meth:`repro.ir.analysis.defuse.DefUseChains.cross_block_pairs` —
    exactly the value flow the same-block operand (``data``) edges do not
    already encode, deduplicated per (def, use).  ``callsummary`` edges
    run from each call site to a per-callee summary node whose feature
    string renders the interprocedural mod/ref/purity summary; summary
    nodes are created lazily at the first call site, so node ids stay a
    deterministic function of module traversal order.
    """
    from repro.ir.analysis.callgraph import CallGraph
    from repro.ir.analysis.defuse import DefUseChains

    summaries = CallGraph(module).summaries()
    summary_node: Dict[str, int] = {}
    for fn in module.defined_functions():
        chains = DefUseChains.build(fn)
        for def_instr, use_instr, pos in chains.cross_block_pairs():
            b.add_edge(
                DATAFLOW, instr_node[id(def_instr)], instr_node[id(use_instr)], pos
            )
        for instr in fn.instructions():
            if instr.opcode != "call":
                continue
            callee = instr.extra.get("callee", "")
            if not callee:
                continue
            if callee not in summary_node:
                summ = summaries.get(callee)
                text = (
                    summ.describe()
                    if summ is not None
                    else f"summary @{callee} unknown calls=0"
                )
                summary_node[callee] = b.add_node("summary", text, NODE_SUMMARY)
            b.add_edge(CALLSUMMARY, instr_node[id(instr)], summary_node[callee], 0)
