"""Functional operations built on :mod:`repro.nn.tensor`.

Contains the graph-specific primitives the GNN needs — vectorized segment
reductions (``segment_sum`` / ``segment_max`` / ``segment_mean`` /
``segment_softmax``) implemented with the sort-based engine in
:mod:`repro.nn.segments` so no Python loop ever runs over nodes or edges —
plus generic tensor utilities (concat, stack, softmax, dropout, embedding
lookup).  Every segment op accepts either a raw id array or a prebuilt
:class:`~repro.nn.segments.SegmentIndex`; passing the latter lets callers
amortize the sort across the several reductions of one attention round.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.segments import (
    SegmentIndex,
    SegmentSpec,
    as_segment_index,
    scatter_add_rows,
    seg_counts,
    seg_max,
    seg_sum,
)
from repro.nn.tensor import Tensor


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        slicer = [slice(None)] * g.ndim
        grads = []
        for i in range(len(datas)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    out = Tensor._make(out_data, tensors, backward)
    if out.requires_grad:
        out._parents = tuple(tensors)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    out = Tensor._make(out_data, tensors, backward)
    if out.requires_grad:
        out._parents = tuple(tensors)
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first argument."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    take_a = (a.data >= b.data).astype(np.float32)
    out_data = np.maximum(a.data, b.data)

    def backward(g: np.ndarray):
        from repro.nn.tensor import _unbroadcast

        return (
            _unbroadcast(g * take_a, a.data.shape),
            _unbroadcast(g * (1.0 - take_a), b.data.shape),
        )

    out = Tensor._make(out_data, (a, b), backward)
    if out.requires_grad:
        out._parents = (a, b)
    return out


def elementwise_max(tensors: Sequence[Tensor]) -> Tensor:
    """Element-wise maximum across a list of same-shaped tensors.

    The paper stacks the per-relation GATv2 outputs and takes the max; this
    helper does exactly that without materializing the stacked array twice.
    """
    out = tensors[0]
    for t in tensors[1:]:
        out = maximum(out, t)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: identity when ``not training`` or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float32) / keep
    return x * Tensor(mask)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` (the Embedding forward).

    ``indices`` is a plain integer array of any shape; the output has shape
    ``indices.shape + (dim,)``.  Backward scatter-adds with ``np.add.at``.
    """
    idx = np.asarray(indices)
    if idx.dtype.kind not in "iu":
        raise TypeError(f"embedding indices must be integers, got {idx.dtype}")
    out_data = weight.data[idx]
    shape = weight.data.shape

    def backward(g: np.ndarray):
        return (scatter_add_rows(shape[0], idx, g),)

    out = Tensor._make(out_data, (weight,), backward)
    if out.requires_grad:
        out._parents = (weight,)
    return out


# --------------------------------------------------------------------------
# Segment reductions — the message-passing workhorses.
# --------------------------------------------------------------------------


def segment_sum(x: Tensor, segment_ids: SegmentSpec, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``.

    ``x`` has shape ``(E, ...)``; the output has shape ``(num_segments, ...)``.
    Empty segments are zero.
    """
    si = as_segment_index(segment_ids, num_segments)
    out_data = seg_sum(x.data, si)
    ids = si.ids

    def backward(g: np.ndarray):
        return (g[ids],)

    out = Tensor._make(out_data, (x,), backward)
    if out.requires_grad:
        out._parents = (x,)
    return out


def segment_mean(x: Tensor, segment_ids: SegmentSpec, num_segments: int) -> Tensor:
    """Mean over each segment; empty segments are zero."""
    si = as_segment_index(segment_ids, num_segments)
    counts = np.maximum(seg_counts(si), 1.0)
    total = segment_sum(x, si, num_segments)
    inv = (1.0 / counts).reshape((num_segments,) + (1,) * (x.data.ndim - 1))
    return total * Tensor(inv)


def segment_max(x: Tensor, segment_ids: SegmentSpec, num_segments: int) -> Tensor:
    """Max over each segment; empty segments are zero, ties split the grad."""
    si = as_segment_index(segment_ids, num_segments)
    ids = si.ids
    out_data = seg_max(x.data, si, empty=-np.inf)
    out_data[~np.isfinite(out_data)] = 0.0

    winners = (x.data == out_data[ids]).astype(np.float32)
    win_counts = seg_sum(winners, si)
    denom = np.maximum(win_counts[ids], 1.0)
    share = winners / denom

    def backward(g: np.ndarray):
        return (g[ids] * share,)

    out = Tensor._make(out_data, (x,), backward)
    if out.requires_grad:
        out._parents = (x,)
    return out


def segment_softmax(scores: Tensor, segment_ids: SegmentSpec, num_segments: int) -> Tensor:
    """Softmax within each segment (GAT attention normalization).

    ``scores`` has shape ``(E,)`` or ``(E, H)``; normalization is independent
    per trailing column (multi-head).  The max-shift is detached, as in every
    standard implementation, so gradients flow only through exp/sum.
    """
    si = as_segment_index(segment_ids, num_segments)
    ids = si.ids
    shift_data = seg_max(scores.data, si, empty=-np.inf)
    shift_data[~np.isfinite(shift_data)] = 0.0
    shifted = scores - Tensor(shift_data[ids])
    e = shifted.exp()
    denom = segment_sum(e, si, num_segments)
    return e / (denom[ids] + 1e-16)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """Plain one-hot encoding (no autograd needed for labels)."""
    idx = np.asarray(indices)
    out = np.zeros(idx.shape + (depth,), dtype=np.float32)
    np.put_along_axis(out, idx[..., None], 1.0, axis=-1)
    return out


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Mirrors ``torch.nn.utils.clip_grad_norm_``.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


def pad_sequences(
    seqs: Sequence[np.ndarray], length: int, pad_value: int
) -> np.ndarray:
    """Pad/truncate integer sequences to ``length`` → array ``(N, length)``."""
    out = np.full((len(seqs), length), pad_value, dtype=np.int64)
    for i, s in enumerate(seqs):
        s = np.asarray(s, dtype=np.int64)[:length]
        out[i, : len(s)] = s
    return out
