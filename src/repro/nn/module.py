"""Module/Parameter abstractions mirroring ``torch.nn.Module``.

A :class:`Module` owns :class:`Parameter` leaves and child modules; it can
enumerate parameters recursively, switch train/eval mode, and serialize its
state to a flat ``dict`` of arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable leaf tensor (``requires_grad=True`` by construction).

    A fused optimizer (:class:`repro.nn.optim.ParameterArena`) may attach
    :attr:`grad_buffer` — a preallocated view into its flat gradient
    buffer.  Backward then accumulates *directly into the arena*, so the
    optimizer's gather step has nothing left to copy.
    """

    def __init__(self, data, name: str = ""):  # noqa: D107
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True)
        self.name = name
        self.grad_buffer: "np.ndarray | None" = None

    def _accumulate(self, grad: np.ndarray) -> None:
        buf = self.grad_buffer
        if buf is None:
            Tensor._accumulate(self, grad)
            return
        if self.grad is None:
            # Mirror the base path bit-for-bit: a zeroed buffer plus `+=`
            # (never `copyto`) keeps ±0.0 and dtype-promotion behavior
            # identical to the freshly-allocated-zeros reference.
            buf.fill(0.0)
            self.grad = buf
        self.grad += grad


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` discovers them recursively in a
    deterministic (attribute-insertion) order so optimizer state lines up
    across runs.
    """

    def __init__(self) -> None:  # noqa: D107
        self._params: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training = True

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array (e.g. BatchNorm running stats).

        Buffers are included in :meth:`state_dict` / :meth:`load_state_dict`
        but never receive gradients.  The attribute stays a plain ndarray.
        """
        self.__dict__.setdefault("_buffers", {})[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        elif key in self.__dict__.get("_buffers", {}):
            # Re-assigning a registered buffer keeps it tracked.
            self._buffers[key] = np.asarray(value)
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------ traversal
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module and children."""
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` for this module and children."""
        for name in self.__dict__.get("_buffers", {}):
            yield (f"{prefix}{name}", getattr(self, name))
        for name, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters, depth-first, deterministic order."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights."""
        return sum(p.size for p in self.parameters())

    def layout_fingerprint(self) -> str:
        """Content hash of the parameter *layout* (names, shapes, order).

        Two modules share a fingerprint exactly when a flat optimizer-state
        buffer (see :class:`repro.nn.optim.ParameterArena`) recorded against
        one can be replayed against the other.  Checkpoint resume validates
        this before importing saved Adam moments.
        """
        import hashlib

        h = hashlib.sha256()
        for name, p in self.named_parameters():
            h.update(name.encode("utf-8"))
            h.update(repr(tuple(p.data.shape)).encode("utf-8"))
        return h.hexdigest()[:16]

    # ----------------------------------------------------------- train/eval
    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively (affects dropout)."""
        for mod in self.modules():
            mod.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name → array copy of all parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (strict shape check)."""
        own = dict(self.named_parameters())
        buf_names = [name for name, _ in self.named_buffers()]
        param_state = {k: v for k, v in state.items() if not k.startswith("buffer:")}
        buf_state = {k[len("buffer:") :]: v for k, v in state.items() if k.startswith("buffer:")}
        missing = (set(own) - set(param_state)) | (set(buf_names) - set(buf_state))
        unexpected = (set(param_state) - set(own)) | (set(buf_state) - set(buf_names))
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, arr in param_state.items():
            if own[name].data.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {own[name].data.shape} vs {arr.shape}"
                )
            own[name].data = np.asarray(arr, dtype=np.float32).copy()
        for name, arr in buf_state.items():
            parts = name.split(".")
            mod = self
            for part in parts[:-1]:
                mod = mod._modules[part]
            current = getattr(mod, parts[-1])
            if np.asarray(current).shape != arr.shape:
                raise ValueError(f"shape mismatch for buffer {name}")
            setattr(mod, parts[-1], np.asarray(arr).copy())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        """Subclasses implement the computation."""
        raise NotImplementedError


class ModuleList(Module):
    """An indexable container of sub-modules (like ``torch.nn.ModuleList``)."""

    def __init__(self, modules=()):  # noqa: D107
        super().__init__()
        self._items: List[Module] = []
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> None:
        """Add a module to the list."""
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise RuntimeError("ModuleList is a container; call its items instead")


class ModuleDict(Module):
    """A string-keyed container of sub-modules."""

    def __init__(self, modules: Dict[str, Module] | None = None):  # noqa: D107
        super().__init__()
        if modules:
            for k, v in modules.items():
                self[k] = v

    def __setitem__(self, key: str, module: Module) -> None:
        self._modules[key] = module

    def __getitem__(self, key: str) -> Module:
        return self._modules[key]

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def keys(self):
        """Keys of the contained modules."""
        return self._modules.keys()

    def items(self):
        """(key, module) pairs."""
        return self._modules.items()

    def forward(self, *args, **kwargs):  # pragma: no cover
        raise RuntimeError("ModuleDict is a container; call its items instead")
