"""Graph neural network layers: GATv2 convolution and heterogeneous wrapper.

``GATv2Conv`` follows Brody, Alon & Yahav, *How Attentive are Graph Attention
Networks?* (ICLR 2022) — the convolution GraphBinMatch uses.  ``HeteroConv``
mirrors ``torch_geometric.nn.HeteroConv``: one convolution per edge type
(control / data / call flow), with the per-relation outputs stacked and
reduced by element-wise max, exactly as in the paper's Figure 2.

All message passing is vectorized: per-edge work is fancy indexing over node
arrays, per-node reductions are the sorted segment operations of
:mod:`repro.nn.segments`; no Python loop runs over edges.  Callers may pass
prebuilt :class:`~repro.nn.segments.ConvPlan` objects (one per relation) so
the self-loop augmentation and destination sort are paid once per batch
rather than once per layer per step.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.nn import init
from repro.nn.functional import elementwise_max, segment_softmax, segment_sum
from repro.nn.layers import LayerNorm
from repro.nn.module import Module, ModuleDict, Parameter
from repro.nn.segments import ConvPlan, build_conv_plan
from repro.nn.tensor import Tensor

EdgeIndex = np.ndarray  # shape (2, E): row 0 = source node ids, row 1 = dest


class GATv2Conv(Module):
    """Single-relation GATv2 convolution.

    Parameters
    ----------
    in_dim, out_dim:
        Node feature dimensions.  With ``heads > 1`` the output is the
        concatenation of per-head results, so ``out_dim`` must be divisible
        by ``heads``.
    heads:
        Number of attention heads.
    edge_dim:
        If not ``None``, edges carry an integer *position* feature (the
        ProGraML operand position); it is embedded and added to the
        attention input, as GraphBinMatch does.
    max_positions:
        Size of the position-embedding table (positions clip into range).
    add_self_loops:
        Append a self edge to every node before attention (PyG default),
        which keeps isolated nodes alive across layers.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 1,
        edge_dim: Optional[int] = None,
        max_positions: int = 16,
        add_self_loops: bool = True,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        if out_dim % heads != 0:
            raise ValueError(f"out_dim {out_dim} not divisible by heads {heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.heads = heads
        self.head_dim = out_dim // heads
        self.negative_slope = negative_slope
        self.add_self_loops = add_self_loops
        self.edge_dim = edge_dim
        self.max_positions = max_positions

        self.w_src = Parameter(init.glorot_uniform(rng, in_dim, out_dim), name="w_src")
        self.w_dst = Parameter(init.glorot_uniform(rng, in_dim, out_dim), name="w_dst")
        self.att = Parameter(
            init.glorot_uniform(rng, self.head_dim, heads, shape=(heads, self.head_dim)),
            name="att",
        )
        self.bias = Parameter(np.zeros(out_dim, dtype=np.float32), name="bias")
        if edge_dim is not None:
            self.pos_table = Parameter(
                init.normal(rng, (max_positions, out_dim), std=0.1), name="pos_table"
            )
        else:
            self.pos_table = None

    def forward(
        self,
        x: Tensor,
        edge_index: Optional[EdgeIndex] = None,
        edge_pos: Optional[np.ndarray] = None,
        plan: Optional[ConvPlan] = None,
    ) -> Tensor:
        """Run one round of attention message passing.

        ``x`` is ``(N, in_dim)``; ``edge_index`` is ``(2, E)`` int; the
        result is ``(N, out_dim)``.  When ``plan`` is given it supersedes
        ``edge_index``/``edge_pos`` and must have been built for the same
        node count and self-loop setting.
        """
        n = x.shape[0]
        if plan is None:
            plan = build_conv_plan(edge_index, edge_pos, n, self.add_self_loops)
        elif plan.num_nodes != n:
            raise ValueError(f"plan built for {plan.num_nodes} nodes, batch has {n}")
        elif plan.add_self_loops != self.add_self_loops:
            raise ValueError(
                f"plan built with add_self_loops={plan.add_self_loops}, layer "
                f"expects {self.add_self_loops}: self edges would be "
                f"{'double-counted' if plan.add_self_loops else 'dropped'}"
            )
        src, dst = plan.src, plan.dst

        x_src = x @ self.w_src  # (N, H*D)
        x_dst = x @ self.w_dst

        gathered_src = x_src[src]  # (E, H*D), reused as the message payload
        e_feat = gathered_src + x_dst[dst]
        if self.pos_table is not None and plan.pos is not None:
            pos = np.clip(plan.pos, 0, self.max_positions - 1)
            from repro.nn.functional import embedding_lookup

            e_feat = e_feat + embedding_lookup(self.pos_table, pos)

        e_act = e_feat.leaky_relu(self.negative_slope)
        e_act = e_act.reshape(-1, self.heads, self.head_dim)
        scores = (e_act * self.att).sum(axis=-1)  # (E, H)

        alpha = segment_softmax(scores, plan.dst_index, n)  # (E, H)
        messages = gathered_src.reshape(-1, self.heads, self.head_dim)
        weighted = messages * alpha.reshape(-1, self.heads, 1)
        out = segment_sum(weighted, plan.dst_index, n)  # (N, H, D)
        return out.reshape(n, self.out_dim) + self.bias


class HeteroConv(Module):
    """Per-edge-type convolutions over a shared node space, reduced by max.

    GraphBinMatch's graphs have one node index space (instructions, variables
    and constants share ids, distinguished by a node-type feature) and three
    edge relations.  Each relation gets its own :class:`GATv2Conv`; outputs
    are stacked and reduced with element-wise maximum ("Stack & Max" in the
    paper's Figure 2), followed by LayerNorm applied by the caller.

    ``aggregate`` may be ``"max"`` (paper), ``"sum"`` or ``"mean"`` — the
    alternatives exist for the ablation bench.
    """

    def __init__(
        self,
        convs: Mapping[str, GATv2Conv],
        aggregate: str = "max",
    ):  # noqa: D107
        super().__init__()
        if aggregate not in ("max", "sum", "mean"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        self.convs = ModuleDict(dict(convs))
        self.aggregate = aggregate

    def forward(
        self,
        x: Tensor,
        edges: Optional[Mapping[str, EdgeIndex]] = None,
        edge_pos: Optional[Mapping[str, np.ndarray]] = None,
        plans: Optional[Mapping[str, ConvPlan]] = None,
    ) -> Tensor:
        """Apply each relation's conv and combine the results."""
        outs = []
        for rel, conv in self.convs.items():
            if plans is not None and rel in plans:
                outs.append(conv(x, plan=plans[rel]))
                continue
            e = edges.get(rel) if edges is not None else None
            if e is None:
                e = np.zeros((2, 0), dtype=np.int64)
            pos = edge_pos.get(rel) if edge_pos is not None else None
            outs.append(conv(x, e, pos))
        if len(outs) == 1:
            return outs[0]
        if self.aggregate == "max":
            return elementwise_max(outs)
        total = outs[0]
        for o in outs[1:]:
            total = total + o
        if self.aggregate == "mean":
            total = total * (1.0 / len(outs))
        return total


class HeteroGNNStack(Module):
    """The paper's graph-convolution module: L hetero layers with LayerNorm.

    "This layer includes three separated GATv2Conv layers to model each one
    of the relationships … After each GATv2Conv, we include additional
    LayerNorm to stabilize training" (§III-D.1).
    """

    def __init__(
        self,
        relations: Sequence[str],
        in_dim: int,
        hidden_dim: int,
        num_layers: int,
        heads: int = 1,
        use_positions: bool = True,
        aggregate: str = "max",
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        from repro.nn.module import ModuleList

        self.layers = ModuleList()
        self.norms = ModuleList()
        dims = [in_dim] + [hidden_dim] * num_layers
        for layer_idx in range(num_layers):
            convs = {
                rel: GATv2Conv(
                    dims[layer_idx],
                    dims[layer_idx + 1],
                    heads=heads,
                    edge_dim=1 if use_positions else None,
                    rng=rng,
                )
                for rel in relations
            }
            self.layers.append(HeteroConv(convs, aggregate=aggregate))
            self.norms.append(LayerNorm(dims[layer_idx + 1]))

    def forward(
        self,
        x: Tensor,
        edges: Optional[Mapping[str, EdgeIndex]] = None,
        edge_pos: Optional[Mapping[str, np.ndarray]] = None,
        plans: Optional[Mapping[str, ConvPlan]] = None,
    ) -> Tensor:
        """Run all hetero layers with LeakyReLU + LayerNorm between them.

        All layers share the same edge structure, so when ``plans`` is not
        supplied it is built once here and reused by every layer.
        """
        if plans is None and edges is not None:
            n = x.shape[0]
            plans = {
                rel: build_conv_plan(
                    edges.get(rel),
                    edge_pos.get(rel) if edge_pos is not None else None,
                    n,
                )
                for rel in edges
            }
        h = x
        for conv, norm in zip(self.layers, self.norms):
            h = conv(h, edges, edge_pos, plans=plans)
            h = norm(h.leaky_relu())
        return h
