"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the PyTorch substitute for the reproduction: a tape-based
autograd engine whose :class:`Tensor` wraps a ``numpy.ndarray`` and records
the operations applied to it.  Calling :meth:`Tensor.backward` walks the tape
in reverse topological order and accumulates gradients into every tensor
created with ``requires_grad=True``.

Design notes (per the hpc-parallel guides):

* all differentiable payloads are contiguous ``float32`` arrays; integer
  index tensors never require grad,
* every op's backward is fully vectorized — broadcasting is undone with a
  single ``sum``-based :func:`_unbroadcast`; scatter-style backwards use the
  sorted reducer in :mod:`repro.nn.segments` (``np.add.at`` remains only as
  the fallback for non-integer-array indices),
* the tape stores closures, not graphs of Python objects per element, so
  overhead is per-*operation* not per-*element*.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_grad_enabled = True


class no_grad:
    """Context manager disabling tape recording (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` (undoing NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum out leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if arr.dtype.kind == "f" and arr.dtype != np.dtype(dtype):
        arr = arr.astype(dtype)
    elif arr.dtype.kind in "iu" and dtype is np.float32:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A NumPy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray``.  Floating data is stored as
        ``float32``.
    requires_grad:
        If True, gradients accumulate in :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind == "f" and arr.dtype != np.float32:
            arr = arr.astype(np.float32)
        elif arr.dtype.kind in "iub" and requires_grad:
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """NumPy dtype of the payload."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor (differentiable)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the raw array (shared memory, do not mutate during training)."""
        return self.data

    def item(self) -> float:
        """Return the sole element as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(
            self.data
        )

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------- autograd
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros(self.data.shape, dtype=np.float32)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (use on scalar losses).  Gradients are
        *accumulated*: call :meth:`zero_grad` on parameters (or use an
        optimizer) between steps.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones(self.data.shape, dtype=np.float32)
        else:
            grad = np.asarray(grad, dtype=np.float32)

        # Topological order via iterative DFS (avoids recursion limits on
        # long LSTM tapes).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is not None:
                node._backward_into(grads, node_grad)
            else:
                node._accumulate(node_grad)

    def _backward_into(self, grads: dict, node_grad: np.ndarray) -> None:
        """Run this node's backward closure, routing grads to parents."""
        contributions = self._backward(node_grad)
        for parent, contrib in zip(self._parents_all(), contributions):
            if contrib is None or not parent.requires_grad:
                continue
            contrib = np.asarray(contrib, dtype=np.float32)
            if parent._parents or parent._backward is not None:
                existing = grads.get(id(parent))
                if existing is None:
                    # Copy when the contribution aliases the incoming grad or
                    # is a view (e.g. broadcast_to): stored entries are
                    # accumulated in place and must own their memory.
                    if contrib is node_grad or contrib.base is not None:
                        contrib = contrib.copy()
                    grads[id(parent)] = contrib
                else:
                    existing += contrib
            else:
                parent._accumulate(contrib)

    def _parents_all(self) -> Tuple["Tensor", ...]:
        return self._parents

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ----------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data + other_t.data

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g, self.data.shape),
                _unbroadcast(g, other_t.data.shape),
            )

        out = Tensor._make(out_data, (self, other_t), backward)
        if out.requires_grad:
            out._parents = (self, other_t)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return (-g,)

        out = Tensor._make(-self.data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data - other_t.data

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g, self.data.shape),
                _unbroadcast(-g, other_t.data.shape),
            )

        out = Tensor._make(out_data, (self, other_t), backward)
        if out.requires_grad:
            out._parents = (self, other_t)
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data * other_t.data
        a_data, b_data = self.data, other_t.data

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g * b_data, a_data.shape),
                _unbroadcast(g * a_data, b_data.shape),
            )

        out = Tensor._make(out_data, (self, other_t), backward)
        if out.requires_grad:
            out._parents = (self, other_t)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        out_data = self.data / other_t.data
        a_data, b_data = self.data, other_t.data

        def backward(g: np.ndarray):
            return (
                _unbroadcast(g / b_data, a_data.shape),
                _unbroadcast(-g * a_data / (b_data * b_data), b_data.shape),
            )

        out = Tensor._make(out_data, (self, other_t), backward)
        if out.requires_grad:
            out._parents = (self, other_t)
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        base = self.data

        def backward(g: np.ndarray):
            return (g * exponent * base ** (exponent - 1),)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        a, b = self.data, other_t.data
        out_data = a @ b

        def backward(g: np.ndarray):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
                return (g @ b.T, np.outer(a, g))
            if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
                return (np.outer(g, b), a.T @ g)
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        out = Tensor._make(out_data, (self, other_t), backward)
        if out.requires_grad:
            out._parents = (self, other_t)
        return out

    # ------------------------------------------------------------ reshaping
    def reshape(self, *shape: int) -> "Tensor":
        """Differentiable reshape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray):
            return (g.reshape(original),)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def transpose(self, *axes: int) -> "Tensor":
        """Differentiable transpose; no axes means reverse all axes."""
        if not axes:
            axes_t = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_t = tuple(axes[0])
        else:
            axes_t = axes
        inverse = np.argsort(axes_t)
        out_data = self.data.transpose(axes_t)

        def backward(g: np.ndarray):
            return (g.transpose(inverse),)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def __getitem__(self, index) -> "Tensor":
        """Differentiable indexing (slices, integer arrays, masks)."""
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]
        shape = self.data.shape

        if isinstance(index, np.ndarray) and index.dtype.kind in "iu":
            # Row gather: backward is a sorted scatter-add, far faster than
            # the per-element np.add.at fallback below.
            def backward(g: np.ndarray):
                from repro.nn.segments import scatter_add_rows

                return (scatter_add_rows(shape[0], index, g),)

        else:

            def backward(g: np.ndarray):
                grad = np.zeros(shape, dtype=np.float32)
                np.add.at(grad, index, g)
                return (grad,)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable sum."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).astype(np.float32),)
            g_exp = g
            if not keepdims:
                g_exp = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g_exp, shape).astype(np.float32),)

        out = Tensor._make(np.asarray(out_data, dtype=np.float32), (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Differentiable mean."""
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.data.shape[a]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Differentiable max along ``axis`` (ties share the gradient)."""
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == out_data).astype(np.float32)
        mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
        result = out_data if keepdims else np.squeeze(out_data, axis=axis)

        def backward(g: np.ndarray):
            g_exp = g if keepdims else np.expand_dims(g, axis=axis)
            return (g_exp * mask,)

        out = Tensor._make(result, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g: np.ndarray):
            return (g * out_data,)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        data = self.data

        def backward(g: np.ndarray):
            return (g / data,)

        out = Tensor._make(np.log(data), (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray):
            return (g * 0.5 / np.maximum(out_data, 1e-12),)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def tanh(self) -> "Tensor":
        """Elementwise tanh."""
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray):
            return (g * (1.0 - out_data * out_data),)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        x = self.data
        out_data = np.empty_like(x)
        pos = x >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out_data[~pos] = ex / (1.0 + ex)

        def backward(g: np.ndarray):
            return (g * out_data * (1.0 - out_data),)

        out = Tensor._make(out_data, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def relu(self) -> "Tensor":
        """Elementwise ReLU."""
        mask = (self.data > 0).astype(np.float32)

        def backward(g: np.ndarray):
            return (g * mask,)

        out = Tensor._make(self.data * mask, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """Elementwise LeakyReLU — the paper's activation throughout."""
        slope = np.where(self.data > 0, 1.0, negative_slope).astype(np.float32)

        def backward(g: np.ndarray):
            return (g * slope,)

        out = Tensor._make(self.data * slope, (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def abs(self) -> "Tensor":
        """Elementwise absolute value (gradient is the sign; 0 at 0)."""
        sign = np.sign(self.data).astype(np.float32)

        def backward(g: np.ndarray):
            return (g * sign,)

        out = Tensor._make(np.abs(self.data), (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Differentiable clamp (zero gradient outside the range)."""
        mask = ((self.data >= low) & (self.data <= high)).astype(np.float32)

        def backward(g: np.ndarray):
            return (g * mask,)

        out = Tensor._make(np.clip(self.data, low, high), (self,), backward)
        if out.requires_grad:
            out._parents = (self,)
        return out


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-zeros float32 tensor."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """All-ones float32 tensor."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)
