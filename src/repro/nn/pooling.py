"""Graph-level read-outs: the SimGNN-style global attention pooling.

GraphBinMatch pools node embeddings into a graph embedding exactly as SimGNN
(Bai et al., WSDM 2019) does: a global context vector ``c`` is the mean node
embedding passed through a learned non-linear transform; each node's
attention weight is ``sigmoid(h_i · c)``; the graph embedding is the
attention-weighted sum of node embeddings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.functional import segment_mean, segment_sum
from repro.nn.module import Module, Parameter
from repro.nn.segments import SegmentIndex, as_segment_index
from repro.nn.tensor import Tensor


class GlobalAttentionPool(Module):
    """SimGNN attention read-out over a (possibly batched) node set.

    ``graph_ids`` assigns each node to a graph in the batch, so a single
    forward pools every graph at once with two segment reductions.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.w_context = Parameter(init.glorot_uniform(rng, dim, dim), name="w_context")

    def forward(
        self,
        x: Tensor,
        graph_ids: Optional[np.ndarray] = None,
        num_graphs: int = 1,
    ) -> Tensor:
        """Pool ``(N, D)`` node embeddings into ``(num_graphs, D)``.

        With ``graph_ids=None`` all nodes belong to one graph; a prebuilt
        :class:`~repro.nn.segments.SegmentIndex` is accepted too.  The
        attention-weighted sum is normalized by the total attention mass
        (a weighted mean): the raw SimGNN sum scales linearly with graph
        size, which at CPU scale drowns the content signal in a size
        factor (empirically, all pooled embeddings became parallel).
        """
        n = x.shape[0]
        if graph_ids is None:
            graph_ids = np.zeros(n, dtype=np.int64)
            num_graphs = 1
        si = as_segment_index(graph_ids, num_graphs)
        mean_h = segment_mean(x, si, num_graphs)  # (G, D)
        context = (mean_h @ self.w_context).tanh()  # (G, D)
        att_logits = (x * context[si.ids]).sum(axis=-1, keepdims=True)  # (N, 1)
        att = att_logits.sigmoid()
        weighted = segment_sum(x * att, si, num_graphs)  # (G, D)
        mass = segment_sum(att, si, num_graphs) + 1e-8  # (G, 1)
        return weighted / mass


class MeanPool(Module):
    """Plain mean read-out (ablation alternative to attention pooling)."""

    def __init__(self) -> None:  # noqa: D107
        super().__init__()

    def forward(
        self,
        x: Tensor,
        graph_ids: Optional[np.ndarray] = None,
        num_graphs: int = 1,
    ) -> Tensor:
        """Average node embeddings per graph."""
        n = x.shape[0]
        if graph_ids is None:
            graph_ids = np.zeros(n, dtype=np.int64)
            num_graphs = 1
        return segment_mean(x, graph_ids, num_graphs)
