"""Weight initializers (Glorot/Kaiming/normal), all seeded explicitly."""

from __future__ import annotations

import numpy as np


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int, shape=None) -> np.ndarray:
    """Glorot/Xavier uniform — PyG's default for GAT weight matrices."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def kaiming_uniform(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    """Kaiming uniform with a=sqrt(5) — PyTorch's Linear default."""
    bound = np.sqrt(1.0 / fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    """Gaussian init — used for embedding tables (GPT-style std=0.02)."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape) -> np.ndarray:
    """All-zeros init for biases."""
    return np.zeros(shape, dtype=np.float32)
