"""Sorted segment reductions — the scatter/gather engine of the GNN.

``np.add.at`` / ``np.maximum.at`` are *unbuffered* ufunc scatters; NumPy
implements them with a per-element inner loop, and at program-graph scale
they dominated the training profile (~40% of step time).  The replacement
used throughout this module is the classic sort-based reduction:

1. stable-argsort the segment ids once,
2. reduce each run — sums via a cached ``scipy.sparse`` CSR aggregation
   matrix (one SpMM per call, the fastest route NumPy/SciPy offer for
   many short segments), maxima via ``np.maximum.reduceat``,
3. scatter the per-run results into the output with one fancy assignment.

A :class:`SegmentIndex` caches step 1 (and the CSR matrix) so every distinct
id array pays the sort exactly once per batch; all reductions over the same
ids (the GAT attention softmax needs three) reuse it.  :class:`ConvPlan` extends the idea
to a whole GATv2 relation: self-loop-augmented edge arrays plus the
destination index, built once per batched graph and reused by every layer
and every epoch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np


class SegmentIndex:
    """Precomputed sort layout for one segment-id array.

    Attributes
    ----------
    ids:
        The original (unsorted) int64 segment ids, flattened.
    num_segments:
        Output bucket count; ids must lie in ``[0, num_segments)``.
    order:
        ``argsort(ids, kind="stable")``.
    starts:
        Start offset of each run in the sorted order (``reduceat`` input).
    unique:
        The segment id of each run, i.e. the rows of the output that are
        actually populated; all other rows are the reduction's identity.
    counts:
        Run lengths (number of items per populated segment).
    """

    __slots__ = (
        "ids",
        "num_segments",
        "order",
        "starts",
        "unique",
        "counts",
        "_matrix",
    )

    def __init__(self, segment_ids: np.ndarray, num_segments: int):  # noqa: D107
        ids = np.ascontiguousarray(np.asarray(segment_ids, dtype=np.int64).ravel())
        self.ids = ids
        self.num_segments = int(num_segments)
        self._matrix = None
        if ids.size == 0:
            self.order = np.zeros(0, dtype=np.int64)
            self.starts = np.zeros(0, dtype=np.int64)
            self.unique = np.zeros(0, dtype=np.int64)
            self.counts = np.zeros(0, dtype=np.int64)
            return
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        change = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
        starts = np.concatenate([np.zeros(1, dtype=np.int64), change])
        self.order = order
        self.starts = starts
        self.unique = sorted_ids[starts]
        self.counts = np.diff(np.concatenate([starts, [ids.size]]))

    def matrix(self):
        """Cached ``(num_segments, len(ids))`` CSR aggregation matrix.

        Row *s* holds a 1 at every column whose item belongs to segment *s*,
        so ``matrix() @ data`` is the segment sum.  Built from the sorted
        layout without another pass over the ids.
        """
        if self._matrix is None:
            from scipy import sparse

            indptr = np.zeros(self.num_segments + 1, dtype=np.int64)
            if self.ids.size:
                indptr[self.unique + 1] = self.counts
            np.cumsum(indptr, out=indptr)
            self._matrix = sparse.csr_matrix(
                (
                    np.ones(self.ids.size, dtype=np.float32),
                    self.order.astype(np.int32, copy=False),
                    indptr,
                ),
                shape=(self.num_segments, self.ids.size),
            )
        return self._matrix

    def __len__(self) -> int:
        return self.ids.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SegmentIndex(items={self.ids.size}, "
            f"segments={self.num_segments}, populated={self.unique.size})"
        )


SegmentSpec = Union[np.ndarray, SegmentIndex]


def as_segment_index(segment_ids: SegmentSpec, num_segments: int) -> SegmentIndex:
    """Coerce raw ids to a :class:`SegmentIndex` (no-op if already one)."""
    if isinstance(segment_ids, SegmentIndex):
        if segment_ids.num_segments != num_segments:
            raise ValueError(
                f"SegmentIndex built for {segment_ids.num_segments} segments, "
                f"got num_segments={num_segments}"
            )
        return segment_ids
    return SegmentIndex(segment_ids, num_segments)


def seg_sum(data: np.ndarray, index: SegmentIndex) -> np.ndarray:
    """Sum rows of ``data`` (shape ``(E, ...)``) per segment → ``(S, ...)``.

    Empty segments are zero.  Implemented as one sparse matmul against the
    cached CSR aggregation matrix.
    """
    rest = data.shape[1:]
    if index.ids.size == 0:
        return np.zeros((index.num_segments,) + rest, dtype=np.float32)
    flat = data.reshape(data.shape[0], -1)
    if flat.dtype != np.float32:
        flat = flat.astype(np.float32)
    out = index.matrix() @ flat  # (S, prod(rest))
    return np.ascontiguousarray(out).reshape((index.num_segments,) + rest)


def seg_max(data: np.ndarray, index: SegmentIndex, empty: float = 0.0) -> np.ndarray:
    """Per-segment maximum; empty segments take the value ``empty``."""
    out = np.full((index.num_segments,) + data.shape[1:], empty, dtype=np.float32)
    if index.ids.size:
        sorted_rows = np.ascontiguousarray(data[index.order], dtype=np.float32)
        out[index.unique] = np.maximum.reduceat(sorted_rows, index.starts, axis=0)
    return out


def seg_counts(index: SegmentIndex) -> np.ndarray:
    """Number of items per segment as float32 ``(S,)`` (zeros for empty)."""
    out = np.zeros(index.num_segments, dtype=np.float32)
    if index.ids.size:
        out[index.unique] = index.counts
    return out


# Memo for the SegmentIndex built inside scatter_add_rows, keyed by the
# *identity* of the index array.  Gather backwards run once per training
# step over index arrays that are reused across steps — the token-dedup
# ``inverse`` and ``graph_index`` arrays of an encoded batch are the same
# ndarray objects every epoch — yet each backward paid a fresh stable sort.
# A bounded LRU (an entry's SegmentIndex keeps the keyed array alive, so
# weakref-based eviction can never fire; the cap bounds memory instead):
# one epoch touches a few arrays per encoded batch, far below the cap.
# Entries pin their keyed array, so a hit on ``(id, rows)`` is always the
# same object; the identity re-check is belt-and-braces.  In-place mutation
# of a memoized index array would go unnoticed; index arrays in this
# codebase are build-once (batching/tokenization outputs).
_SCATTER_INDEX_MEMO: "OrderedDict[Tuple[int, int], Tuple[np.ndarray, SegmentIndex]]" = (
    OrderedDict()
)
_SCATTER_INDEX_MEMO_CAP = 256


def _memoized_segment_index(ids: np.ndarray, num_rows: int) -> SegmentIndex:
    key = (id(ids), int(num_rows))
    hit = _SCATTER_INDEX_MEMO.get(key)
    if hit is not None and hit[0] is ids:
        _SCATTER_INDEX_MEMO.move_to_end(key)
        return hit[1]
    index = SegmentIndex(ids, num_rows)
    _SCATTER_INDEX_MEMO[key] = (ids, index)
    _SCATTER_INDEX_MEMO.move_to_end(key)
    while len(_SCATTER_INDEX_MEMO) > _SCATTER_INDEX_MEMO_CAP:
        _SCATTER_INDEX_MEMO.popitem(last=False)
    return index


def scatter_add_rows(
    num_rows: int, indices: np.ndarray, updates: np.ndarray
) -> np.ndarray:
    """Row-scatter-add: ``out[indices[k]] += updates[k]`` without ``np.add.at``.

    ``indices`` may have any shape; ``updates`` must have shape
    ``indices.shape + rest``.  Returns ``(num_rows,) + rest``.  This is the
    backward of every gather (embedding lookup, fancy row indexing).  The
    sorted :class:`SegmentIndex` is memoized per index-array object, so the
    gathers of a reused encoded batch pay the stable sort once per run, not
    once per backward pass.
    """
    idx = np.asarray(indices, dtype=np.int64)
    rest = updates.shape[idx.ndim :]
    if idx.size == 0:
        return np.zeros((num_rows,) + rest, dtype=np.float32)
    flat_updates = updates.reshape(idx.size, -1) if rest else updates.reshape(idx.size, 1)
    index = _memoized_segment_index(idx, num_rows)
    summed = seg_sum(flat_updates, index)  # (num_rows, prod(rest) or 1)
    return summed.reshape((num_rows,) + rest)


@dataclass
class ConvPlan:
    """Precomputed per-relation message-passing layout for GATv2.

    Holds the self-loop-augmented source/destination/position arrays plus
    the destination :class:`SegmentIndex` used by the attention softmax and
    the message aggregation.  One plan serves every GATv2 layer in a stack
    (they all see the same edges) and every epoch (batches are reused).
    """

    src: np.ndarray
    dst: np.ndarray
    pos: Optional[np.ndarray]
    dst_index: SegmentIndex
    num_nodes: int
    # Whether self edges were appended during construction.  Consumers
    # (GATv2Conv) validate this against their own setting: a mismatched
    # plan would silently drop or double-count self edges.
    add_self_loops: bool = True


def build_conv_plan(
    edge_index: Optional[np.ndarray],
    edge_pos: Optional[np.ndarray],
    num_nodes: int,
    add_self_loops: bool = True,
) -> ConvPlan:
    """Build the :class:`ConvPlan` for one relation of a batched graph."""
    if edge_index is None or edge_index.size == 0:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
        pos = np.zeros(0, dtype=np.int64) if edge_pos is not None else None
    else:
        src = np.ascontiguousarray(edge_index[0], dtype=np.int64)
        dst = np.ascontiguousarray(edge_index[1], dtype=np.int64)
        pos = (
            np.ascontiguousarray(edge_pos, dtype=np.int64)
            if edge_pos is not None
            else None
        )
    if add_self_loops:
        loops = np.arange(num_nodes, dtype=np.int64)
        src = np.concatenate([src, loops])
        dst = np.concatenate([dst, loops])
        if pos is not None:
            pos = np.concatenate([pos, np.zeros(num_nodes, dtype=np.int64)])
    return ConvPlan(
        src=src,
        dst=dst,
        pos=pos,
        dst_index=SegmentIndex(dst, num_nodes),
        num_nodes=num_nodes,
        add_self_loops=add_self_loops,
    )
