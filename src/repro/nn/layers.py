"""Core neural layers: Linear, Embedding, LayerNorm, Dropout, Sequential.

These mirror their PyTorch namesakes closely enough that the GraphBinMatch
architecture description in the paper (embedding dim 128, LayerNorm after
each conv, dropout before the last linear) translates line for line.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.functional import dropout as dropout_fn
from repro.nn.functional import embedding_lookup
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b`` with PyTorch-default initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform(rng, in_features, (in_features, out_features)),
            name="weight",
        )
        self.bias = (
            Parameter(init.kaiming_uniform(rng, in_features, (out_features,)), name="bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        """Apply the affine map to the last axis of ``x``."""
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id → dense vector lookup table.

    ``padding_idx`` rows start at zero and — like PyTorch — still receive
    gradient unless the caller masks them; GraphBinMatch masks PAD positions
    before its max-reduction, so this matches the paper's pipeline.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        table = init.normal(rng, (num_embeddings, embedding_dim), std=0.02)
        if padding_idx is not None:
            table[padding_idx] = 0.0
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = Parameter(table, name="weight")

    def forward(self, indices: np.ndarray) -> Tensor:
        """Look up rows; ``indices`` is an integer ndarray of any shape."""
        return embedding_lookup(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):  # noqa: D107
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim, dtype=np.float32), name="gamma")
        self.beta = Parameter(np.zeros(dim, dtype=np.float32), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        """Normalize the last axis to zero mean / unit variance, then scale."""
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class BatchNorm1d(Module):
    """Batch normalization over axis 0 with running statistics.

    Normalizes each feature across the batch: in training mode batch
    statistics are used (and folded into the running estimates); in eval
    mode the running estimates are used, so inference is deterministic and
    batch-size independent.  GraphBinMatch applies this to pooled *graph*
    embeddings, whose population shares a large mean component (common
    instructions dominate every program); centering across the batch removes
    it exactly and conditions the pair head.
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1):  # noqa: D107
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(dim, dtype=np.float32), name="gamma")
        self.beta = Parameter(np.zeros(dim, dtype=np.float32), name="beta")
        self.register_buffer("running_mean", np.zeros(dim, dtype=np.float32))
        self.register_buffer("running_var", np.ones(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        """Normalize ``(B, dim)`` rows feature-wise."""
        if self.training and x.shape[0] > 1:
            mu = x.mean(axis=0, keepdims=True)
            centered = x - mu
            var = (centered * centered).mean(axis=0, keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mu.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
        else:
            mu = Tensor(self.running_mean[None, :])
            centered = x - mu
            var = Tensor(self.running_var[None, :])
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None):  # noqa: D107
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero elements with probability ``p`` during training."""
        return dropout_fn(x, self.p, self.rng, self.training)


class Sequential(Module):
    """Chain of modules and/or plain callables applied in order."""

    def __init__(self, *stages):  # noqa: D107
        super().__init__()
        self.stages = ModuleList([s for s in stages if isinstance(s, Module)])
        self._all_stages: Sequence = stages

    def forward(self, x: Tensor) -> Tensor:
        """Apply each stage in order."""
        for stage in self._all_stages:
            x = stage(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with LeakyReLU activations between layers."""

    def __init__(
        self,
        dims: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        activation: Callable[[Tensor], Tensor] = lambda t: t.leaky_relu(),
        final_activation: Optional[Callable[[Tensor], Tensor]] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.layers = ModuleList(
            [Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)]
        )
        self.activation = activation
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        """Apply all layers; activation between layers, optional final one."""
        n = len(self.layers)
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < n - 1:
                x = self.activation(x)
            elif self.final_activation is not None:
                x = self.final_activation(x)
        return x
