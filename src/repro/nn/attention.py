"""Transformer encoder used by the XLIR(Transformer) baseline reproduction.

A compact pre-LN transformer: sinusoidal positions, multi-head self-attention
with key-padding masks, GELU-free (LeakyReLU) feed-forward, residuals.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic sin/cos positional encoding table ``(length, dim)``."""
    pos = np.arange(length, dtype=np.float32)[:, None]
    idx = np.arange(dim, dtype=np.float32)[None, :]
    angle = pos / np.power(10000.0, (2 * (idx // 2)) / dim)
    table = np.zeros((length, dim), dtype=np.float32)
    table[:, 0::2] = np.sin(angle[:, 0::2])
    table[:, 1::2] = np.cos(angle[:, 1::2])
    return table


class MultiHeadSelfAttention(Module):
    """Multi-head scaled dot-product self-attention with padding mask."""

    def __init__(
        self, dim: int, heads: int, rng: Optional[np.random.Generator] = None
    ):  # noqa: D107
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, key_padding_mask: Optional[np.ndarray] = None) -> Tensor:
        """``x``: (B, T, D); ``key_padding_mask``: (B, T) with 1 = valid."""
        b, t, d = x.shape
        h, hd = self.heads, self.head_dim

        def split(z: Tensor) -> Tensor:  # (B, T, D) -> (B, H, T, hd)
            return z.reshape(b, t, h, hd).transpose(0, 2, 1, 3)

        q = split(self.q_proj(x))
        k = split(self.k_proj(x))
        v = split(self.v_proj(x))
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(hd))  # (B,H,T,T)
        if key_padding_mask is not None:
            neg = (1.0 - key_padding_mask.astype(np.float32)) * -1e9
            scores = scores + Tensor(neg[:, None, None, :])
        att = softmax(scores, axis=-1)
        mixed = att @ v  # (B, H, T, hd)
        merged = mixed.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.out_proj(merged)


class TransformerBlock(Module):
    """Pre-LN transformer block: attention + feed-forward with residuals."""

    def __init__(
        self,
        dim: int,
        heads: int,
        ff_mult: int = 2,
        dropout_p: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Linear(dim, dim * ff_mult, rng=rng)
        self.ff2 = Linear(dim * ff_mult, dim, rng=rng)
        self.drop = Dropout(dropout_p, rng=rng)

    def forward(self, x: Tensor, key_padding_mask: Optional[np.ndarray] = None) -> Tensor:
        """One block: x + attn(LN(x)); x + FF(LN(x))."""
        x = x + self.attn(self.norm1(x), key_padding_mask)
        x = x + self.ff2(self.drop(self.ff1(self.norm2(x)).leaky_relu()))
        return x


class TransformerEncoder(Module):
    """Stack of transformer blocks with sinusoidal position injection."""

    def __init__(
        self,
        dim: int,
        heads: int,
        num_layers: int,
        max_len: int = 512,
        dropout_p: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.pos_table = sinusoidal_positions(max_len, dim)
        self.blocks = ModuleList(
            [TransformerBlock(dim, heads, dropout_p=dropout_p, rng=rng) for _ in range(num_layers)]
        )
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, key_padding_mask: Optional[np.ndarray] = None) -> Tensor:
        """Encode ``(B, T, D)`` → ``(B, T, D)``."""
        t = x.shape[1]
        x = x + Tensor(self.pos_table[:t][None, :, :])
        for block in self.blocks:
            x = block(x, key_padding_mask)
        return self.final_norm(x)
