"""``repro.nn`` — a from-scratch NumPy autograd + neural-network framework.

This package substitutes for PyTorch / PyTorch-Geometric in the
GraphBinMatch reproduction.  It provides:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff over NumPy,
* layers (Linear, Embedding, LayerNorm, BatchNorm1d, Dropout, MLP),
* GNN machinery (GATv2Conv, HeteroConv, segment reductions, SimGNN pooling),
* sequence encoders (LSTM, TransformerEncoder) for the XLIR baselines,
* optimizers (Adam, SGD) and losses (BCE, triplet).
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadSelfAttention, TransformerBlock, TransformerEncoder
from repro.nn.gnn import GATv2Conv, HeteroConv, HeteroGNNStack
from repro.nn.layers import MLP, BatchNorm1d, Dropout, Embedding, LayerNorm, Linear, Sequential
from repro.nn.losses import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    mse_loss,
    triplet_margin_loss,
)
from repro.nn.module import Module, ModuleDict, ModuleList, Parameter
from repro.nn.optim import SGD, Adam, CosineSchedule, Optimizer
from repro.nn.pooling import GlobalAttentionPool, MeanPool
from repro.nn.recurrent import LSTM
from repro.nn.tensor import Tensor, no_grad, ones, tensor, zeros

__all__ = [
    "functional",
    "Tensor",
    "no_grad",
    "tensor",
    "zeros",
    "ones",
    "Module",
    "ModuleList",
    "ModuleDict",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "Sequential",
    "MLP",
    "GATv2Conv",
    "HeteroConv",
    "HeteroGNNStack",
    "GlobalAttentionPool",
    "MeanPool",
    "LSTM",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "TransformerEncoder",
    "Adam",
    "SGD",
    "CosineSchedule",
    "Optimizer",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "triplet_margin_loss",
    "mse_loss",
]
