"""LSTM encoder used by the XLIR(LSTM) baseline reproduction.

A standard single-layer LSTM unrolled in Python over the (short, padded)
token axis; each timestep is a fully vectorized batch update, so the Python
loop cost is O(T), not O(B·T).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.functional import concat
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class LSTM(Module):
    """Single-layer LSTM: input ``(B, T, D_in)`` → hidden states ``(B, T, H)``."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):  # noqa: D107
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        scale = 1.0 / np.sqrt(hidden_dim)
        self.w_x = Parameter(
            (rng.uniform(-scale, scale, (input_dim, 4 * hidden_dim))).astype(np.float32),
            name="w_x",
        )
        self.w_h = Parameter(
            (rng.uniform(-scale, scale, (hidden_dim, 4 * hidden_dim))).astype(np.float32),
            name="w_h",
        )
        bias = np.zeros(4 * hidden_dim, dtype=np.float32)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias = 1
        self.bias = Parameter(bias, name="bias")

    def forward(
        self, x: Tensor, mask: Optional[np.ndarray] = None
    ) -> Tuple[Tensor, Tensor]:
        """Run the recurrence.

        ``mask`` is an optional ``(B, T)`` 0/1 array; masked steps carry the
        previous state forward, so padding after the end of a sequence does
        not perturb the final hidden state.

        Returns ``(all_hidden, last_hidden)`` with shapes ``(B, T, H)`` and
        ``(B, H)``.
        """
        b, t, _ = x.shape
        h = Tensor(np.zeros((b, self.hidden_dim), dtype=np.float32))
        c = Tensor(np.zeros((b, self.hidden_dim), dtype=np.float32))
        hd = self.hidden_dim
        outputs = []
        for step in range(t):
            x_t = x[:, step, :]
            z = x_t @ self.w_x + h @ self.w_h + self.bias
            i_gate = z[:, 0 * hd : 1 * hd].sigmoid()
            f_gate = z[:, 1 * hd : 2 * hd].sigmoid()
            g_gate = z[:, 2 * hd : 3 * hd].tanh()
            o_gate = z[:, 3 * hd : 4 * hd].sigmoid()
            c_new = f_gate * c + i_gate * g_gate
            h_new = o_gate * c_new.tanh()
            if mask is not None:
                m = Tensor(mask[:, step : step + 1].astype(np.float32))
                h = h_new * m + h * (1.0 - m)
                c = c_new * m + c * (1.0 - m)
            else:
                h, c = h_new, c_new
            outputs.append(h.reshape(b, 1, hd))
        all_h = concat(outputs, axis=1)
        return all_h, h
