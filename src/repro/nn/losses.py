"""Loss functions: binary cross-entropy (the paper's loss) and triplet loss
(used by the XLIR baseline reproduction, which trains with a ternary loss)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def binary_cross_entropy(pred: Tensor, target: np.ndarray, eps: float = 1e-7) -> Tensor:
    """BCE on probabilities (post-sigmoid), averaged over the batch.

    ``pred`` holds values in (0, 1); ``target`` is a 0/1 float array of the
    same shape.  Predictions are clipped for numerical stability, matching
    ``torch.nn.BCELoss`` semantics.
    """
    t = np.asarray(target, dtype=np.float32)
    p = pred.clip(eps, 1.0 - eps)
    loss = -(Tensor(t) * p.log() + Tensor(1.0 - t) * (1.0 - p).log())
    return loss.mean()


def binary_cross_entropy_with_logits(logits: Tensor, target: np.ndarray) -> Tensor:
    """Numerically-stable BCE on raw logits:
    ``max(x,0) - x*t + log(1 + exp(-|x|))``."""
    t = Tensor(np.asarray(target, dtype=np.float32))
    relu_x = logits.relu()
    abs_x = logits * Tensor(np.sign(logits.data).astype(np.float32))
    softplus = (Tensor(1.0) + (-abs_x).exp()).log()
    return (relu_x - logits * t + softplus).mean()


def triplet_margin_loss(
    anchor: Tensor, positive: Tensor, negative: Tensor, margin: float = 0.5
) -> Tensor:
    """Triplet loss ``max(0, d(a,p) − d(a,n) + margin)`` with squared-L2 rows.

    XLIR maps binary and source embeddings into a common space with a ternary
    (triplet) objective; this is that objective.
    """
    d_pos = ((anchor - positive) ** 2).sum(axis=-1)
    d_neg = ((anchor - negative) ** 2).sum(axis=-1)
    zero = Tensor(np.zeros(d_pos.shape, dtype=np.float32))
    from repro.nn.functional import maximum

    return maximum(d_pos - d_neg + margin, zero).mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error (used by ablation/diagnostic fits)."""
    t = np.asarray(target, dtype=np.float32)
    diff = pred - Tensor(t)
    return (diff * diff).mean()
