"""Optimizers: Adam (the paper's choice, lr 6.6e-5) and SGD, plus schedulers.

Both optimizers run **fused** by default: a :class:`ParameterArena`
concatenates every parameter into one contiguous float32 buffer (the
parameters' ``.data`` become views into it) with a parallel flat gradient
buffer, and one step is a handful of whole-arena vectorized ops instead of
a Python loop over ~50 parameter tensors with fresh ``m_hat``/``v_hat``
allocations each.  At CPU scale the per-call NumPy dispatch overhead of
the loop dominated the optimizer's share of a training step; the arena
replaces ~8 small array ops *per parameter* with ~8 ops *total*.

The element-wise math mirrors the reference loop operation for operation
(same order, same scalar/array factor placement), so the fused update is
bit-identical to the per-parameter path for parameters that received
gradients; parameters whose ``grad`` is ``None`` are skipped exactly as
the loop skips them (their moments and weights are left untouched).  Pass
``fused=False`` to run the original reference loop — the parity tests in
``tests/test_optim_arena.py`` compare the two.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.module import Parameter


class SharedArenaState:
    """A flat arena snapshot living in POSIX shared memory.

    :meth:`ParameterArena.state_export` with ``shared=True`` returns one of
    these instead of a heap copy: the weights land in a named
    ``repro-shm-*`` segment that any process can :meth:`attach` by
    ``(name, size)`` — parallel trainings exchange weights without
    pickling float buffers through a pipe.  The creating process owns the
    segment and must :meth:`unlink` it; attachments just :meth:`close`.
    """

    def __init__(self, block, size: int, owner: bool):  # noqa: D107
        self._block = block
        self.size = int(size)
        self.owner = bool(owner)

    @classmethod
    def from_array(cls, flat: np.ndarray) -> "SharedArenaState":
        """Copy ``flat`` (float32) into a fresh shared segment."""
        from repro.utils.shm import SharedBlock

        flat = np.ascontiguousarray(flat, dtype=np.float32)
        block = SharedBlock.create(max(flat.nbytes, 1))
        np.frombuffer(block.buf, dtype=np.float32, count=flat.size)[:] = flat
        return cls(block, flat.size, owner=True)

    @classmethod
    def attach(cls, name: str, size: int) -> "SharedArenaState":
        """Map a segment exported by another process (read/write view)."""
        from repro.utils.shm import SharedBlock

        block = SharedBlock.attach(name, max(size * 4, 1))
        return cls(block, size, owner=False)

    @property
    def name(self) -> str:
        """Segment name; pass with :attr:`size` to :meth:`attach`."""
        return self._block.name

    def array(self) -> np.ndarray:
        """The shared weights as a float32 array view (no copy)."""
        return np.frombuffer(self._block.buf, dtype=np.float32, count=self.size)

    def close(self) -> None:
        """Drop this process's mapping."""
        self._block.close()

    def unlink(self) -> None:
        """Remove the segment system-wide (owner's duty; idempotent)."""
        self._block.unlink()


class ParameterArena:
    """Contiguous storage for a parameter list plus a flat gradient buffer.

    On construction every parameter's ``.data`` is copied into one float32
    buffer and replaced by a *view* into it, so a single in-place op on
    :attr:`flat` updates every weight.  Gradients get the same treatment
    in the other direction: each parameter's :attr:`~Parameter.grad_buffer`
    is attached to a view of :attr:`grad_flat`, so backward accumulates
    straight into the arena and :meth:`gather` usually has nothing to copy
    — it only reports which slices had no gradient (zeroing them) so steps
    can skip them exactly like the reference loop, and falls back to a
    ``copyto`` for gradients assigned externally (tests do this).

    The arena re-adopts parameters whose ``.data`` was reassigned from
    outside (e.g. ``load_state_dict`` during early stopping), so it is
    always consistent with external weight surgery.
    """

    def __init__(self, params: Sequence[Parameter]):  # noqa: D107
        self.params: List[Parameter] = list(params)
        self.slices: List[Tuple[int, int]] = []
        offset = 0
        for p in self.params:
            n = int(p.data.size)
            self.slices.append((offset, n))
            offset += n
        self.size = offset
        self.flat = np.zeros(self.size, dtype=np.float32)
        self.grad_flat = np.zeros(self.size, dtype=np.float32)
        self._views: List[np.ndarray] = []
        self.grad_views: List[np.ndarray] = []
        for p, (o, n) in zip(self.params, self.slices):
            self.flat[o : o + n] = np.asarray(p.data, dtype=np.float32).ravel()
            view = self.flat[o : o + n].reshape(p.data.shape)
            p.data = view
            self._views.append(view)
            gview = self.grad_flat[o : o + n].reshape(view.shape)
            p.grad_buffer = gview
            self.grad_views.append(gview)

    # ------------------------------------------------------------- adoption
    def adopt(self) -> None:
        """Re-absorb any parameter whose ``.data`` was replaced externally."""
        for p, view in zip(self.params, self._views):
            if p.data is not view:
                if p.data.shape != view.shape:
                    raise ValueError(
                        f"parameter shape changed under the arena: "
                        f"{view.shape} -> {p.data.shape}"
                    )
                view[...] = p.data
                p.data = view

    def gather(self) -> List[int]:
        """Make :attr:`grad_flat` consistent with the per-parameter grads.

        Gradients accumulated through :attr:`~Parameter.grad_buffer` are
        *already there* (the fast path — no copy); externally-assigned
        arrays are copied in.  Returns the indices of parameters whose
        ``grad`` is ``None``; their slices of the flat buffer are zeroed
        so norm computations see no stale values.
        """
        missing: List[int] = []
        gf = self.grad_flat
        for i, (p, gview, (o, n)) in enumerate(
            zip(self.params, self.grad_views, self.slices)
        ):
            g = p.grad
            if g is None:
                gf[o : o + n] = 0.0
                missing.append(i)
            elif g is not gview:
                np.copyto(gf[o : o + n], g.ravel())
        return missing

    # -------------------------------------------------------- checkpointing
    def state_export(
        self, shared: bool = False
    ) -> Union[np.ndarray, SharedArenaState]:
        """Snapshot the flat weights — a heap copy, or shared memory.

        ``shared=True`` places the copy in a named shared-memory segment
        (:class:`SharedArenaState`) so another process can attach it
        without any serialization; the caller owns the segment's lifetime.
        """
        if shared:
            return SharedArenaState.from_array(self.flat)
        return self.flat.copy()

    def state_import(self, state: Union[np.ndarray, SharedArenaState]) -> None:
        """Restore a :meth:`state_export` snapshot (either flavor), bit-exact."""
        arr = state.array() if isinstance(state, SharedArenaState) else state
        arr = np.asarray(arr, dtype=np.float32).ravel()
        if arr.size != self.size:
            raise ValueError(
                f"arena state size mismatch: snapshot has {arr.size} "
                f"elements, arena holds {self.size}"
            )
        self.adopt()  # external surgery first, so the import wins cleanly
        self.flat[:] = arr


class Optimizer:
    """Base optimizer holding a parameter list (and, when fused, an arena)."""

    def __init__(self, params: Sequence[Parameter], fused: bool = True):  # noqa: D107
        self.params: List[Parameter] = list(params)
        self.fused = bool(fused)
        self.arena: Optional[ParameterArena] = (
            ParameterArena(self.params) if self.fused and self.params else None
        )
        self._gathered = False
        self._missing: List[int] = []
        # Gradient-accumulation buffer: per-parameter sums folded in by
        # accumulate(), consumed (as the effective gradients) by the next
        # clip_grad_norm()/step().  None = no accumulation in flight.
        self._acc: Optional[List[Optional[np.ndarray]]] = None

    def zero_grad(self) -> None:
        """Clear every parameter's gradient (accumulated sums survive)."""
        for p in self.params:
            p.grad = None
        self._gathered = False

    # --------------------------------------------------------- accumulation
    def accumulate(self, scale: float = 1.0) -> None:
        """Fold the current micro-batch gradients into the accumulation sum.

        Call once per micro-batch (after ``backward()``); the next
        :meth:`clip_grad_norm` / :meth:`step` then sees the sum as if one
        large batch had produced it.  ``scale`` weights this micro-batch —
        pass ``1/k`` so k equal micro-batches reproduce the mean gradient
        of the combined batch (bit-exactly when ``k`` is a power of two,
        since scaling and summing are then exact in float32).  Parameters
        with ``grad is None`` contribute nothing; a parameter that never
        contributes stays missing, exactly like a skipped parameter in a
        single-batch step.  Gradients are cleared afterwards so the next
        micro-batch starts clean.
        """
        if self._acc is None:
            self._acc = [None] * len(self.params)
        s = np.float32(scale)
        for i, p in enumerate(self.params):
            g = p.grad
            if g is None:
                continue
            contrib = g if scale == 1.0 else g * s
            if self._acc[i] is None:
                self._acc[i] = np.array(contrib, dtype=np.float32, copy=True)
            else:
                self._acc[i] += contrib
            p.grad = None
        self._gathered = False

    def _materialize_accumulated(self) -> None:
        """Expose the accumulated sums as the parameters' gradients."""
        acc = self._acc
        if acc is None:
            return
        self._acc = None
        for p, g in zip(self.params, acc):
            p.grad = g  # None stays None: the parameter never contributed
        self._gathered = False

    def clip_grad_norm(self, max_norm: float) -> float:
        """Fused global-norm clip over the flat gradient buffer.

        Gathers gradients into the arena (the following :meth:`step` reuses
        them without re-gathering) and applies at most one whole-arena
        scale.  The squared norm is accumulated per parameter slice in the
        exact order of :func:`repro.nn.functional.clip_grad_norm` — a
        single whole-buffer reduction would change the summation tree and
        therefore the last bits of the scale, and any bit of divergence
        compounds over a training run — so the fused path is bit-identical
        to the reference.  The per-parameter ``grad`` arrays are scaled too
        so external inspection stays consistent.  Falls back to the
        reference implementation when not fused.
        """
        self._materialize_accumulated()
        if self.arena is None:
            from repro.nn.functional import clip_grad_norm as _clip

            return _clip(self.params, max_norm)
        self._missing = self.arena.gather()
        self._gathered = True
        gf = self.arena.grad_flat
        total = 0.0
        for o, n in self.arena.slices:
            # Missing-grad slices were zeroed by gather(): exact no-ops here.
            total += float((gf[o : o + n] ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            gf *= scale
            for p, gview in zip(self.params, self.arena.grad_views):
                # View-backed grads live *in* gf and were just scaled; a
                # second in-place multiply would square the scale on them.
                if p.grad is not None and p.grad is not gview:
                    p.grad *= scale
        return norm

    def _prepare_fused(self) -> List[int]:
        """Adopt external edits and make sure grads are gathered."""
        assert self.arena is not None
        self._materialize_accumulated()
        self.arena.adopt()
        if not self._gathered:
            self._missing = self.arena.gather()
        self._gathered = False
        return self._missing

    def _missing_slices(self, missing: Sequence[int]):
        """Yield ``slice`` objects over the flat buffers for absent grads."""
        for i in missing:
            o, n = self.arena.slices[i]
            yield slice(o, o + n)

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    # -------------------------------------------------------- checkpointing
    def state_export(self) -> Dict[str, object]:  # pragma: no cover - abstract
        """Flat-array snapshot of the optimizer state (for checkpoints)."""
        raise NotImplementedError

    def state_import(self, state: Dict[str, object]) -> None:  # pragma: no cover
        """Restore a snapshot produced by :meth:`state_export`."""
        raise NotImplementedError

    def _flatten(self, per_param: Sequence[np.ndarray]) -> np.ndarray:
        return (
            np.concatenate([np.asarray(a, dtype=np.float32).ravel() for a in per_param])
            if per_param
            else np.zeros(0, dtype=np.float32)
        )

    def _split(self, flat: np.ndarray) -> List[np.ndarray]:
        flat = np.asarray(flat, dtype=np.float32)
        total = sum(p.data.size for p in self.params)
        if flat.size != total:
            raise ValueError(
                f"optimizer state size mismatch: checkpoint has {flat.size} "
                f"elements, model needs {total}"
            )
        out, offset = [], 0
        for p in self.params:
            n = p.data.size
            out.append(flat[offset : offset + n].reshape(p.data.shape).copy())
            offset += n
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 fused: bool = True):  # noqa: D107
        super().__init__(params, fused=fused)
        self.lr = lr
        self.momentum = momentum
        if self.arena is not None:
            self._velocity_flat = np.zeros(self.arena.size, dtype=np.float32)
            self._velocity: List[np.ndarray] = []
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """v ← μv + g;  w ← w − lr·v."""
        if self.arena is not None:
            self._step_fused()
            return
        self._materialize_accumulated()
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad

    def _step_fused(self) -> None:
        missing = self._prepare_fused()
        arena = self.arena
        g = arena.grad_flat
        if self.momentum > 0:
            vel = self._velocity_flat
            saved = [(sl, vel[sl].copy()) for sl in self._missing_slices(missing)]
            vel *= self.momentum
            vel += g
            upd = self.lr * vel
            for sl, snap in saved:
                vel[sl] = snap
                upd[sl] = 0.0
        else:
            upd = self.lr * g
            for sl in self._missing_slices(missing):
                upd[sl] = 0.0
        arena.flat -= upd

    def state_export(self) -> Dict[str, object]:
        """Momentum buffer as one flat array."""
        vel = (
            self._velocity_flat.copy()
            if self.arena is not None
            else self._flatten(self._velocity)
        )
        return {"algo": "sgd", "velocity": vel}

    def state_import(self, state: Dict[str, object]) -> None:
        """Restore the momentum buffer."""
        if state.get("algo") != "sgd":
            raise ValueError(f"not an SGD state: {state.get('algo')!r}")
        if self.arena is not None:
            flat = np.asarray(state["velocity"], dtype=np.float32)
            if flat.size != self.arena.size:
                raise ValueError("SGD state size mismatch")
            self._velocity_flat = flat.copy()
        else:
            self._velocity = self._split(np.asarray(state["velocity"]))


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) — the optimizer GraphBinMatch trains with."""

    def __init__(
        self,
        params,
        lr: float = 6.6e-5,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = True,
    ):  # noqa: D107
        super().__init__(params, fused=fused)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        if self.arena is not None:
            self._m_flat = np.zeros(self.arena.size, dtype=np.float32)
            self._v_flat = np.zeros(self.arena.size, dtype=np.float32)
            self._scratch = np.empty(self.arena.size, dtype=np.float32)
            self._upd = np.empty(self.arena.size, dtype=np.float32)
            self._m: List[np.ndarray] = []
            self._v: List[np.ndarray] = []
        else:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Standard bias-corrected Adam update."""
        if self.arena is not None:
            self._step_fused()
            return
        self._materialize_accumulated()
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay > 0:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / b1t
            v_hat = v / b2t
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_fused(self) -> None:
        """Whole-arena update, op-for-op the reference loop's arithmetic.

        Parameters without gradients keep their moments and weights exactly
        as the loop's ``continue`` leaves them: their moment slices are
        snapshotted before the vectorized update and restored after, and
        their weight delta is zeroed (missing parameters are rare — one
        snapshot per absent grad, never per step in the common all-present
        case).
        """
        missing = self._prepare_fused()
        arena = self.arena
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        m, v, scratch, upd = self._m_flat, self._v_flat, self._scratch, self._upd
        g = arena.grad_flat
        saved = [
            (sl, m[sl].copy(), v[sl].copy()) for sl in self._missing_slices(missing)
        ]
        if self.weight_decay > 0:
            np.multiply(arena.flat, np.float32(self.weight_decay), out=scratch)
            scratch += g
            g = scratch.copy()
        # m *= b1;  m += (1-b1)*g
        m *= np.float32(self.beta1)
        np.multiply(g, np.float32(1.0 - self.beta1), out=upd)
        m += upd
        # v *= b2;  v += (1-b2)*(g*g)
        v *= np.float32(self.beta2)
        np.multiply(g, g, out=upd)
        upd *= np.float32(1.0 - self.beta2)
        v += upd
        # upd = lr * (m/b1t) / (sqrt(v/b2t) + eps)
        np.divide(v, np.float32(b2t), out=scratch)
        np.sqrt(scratch, out=scratch)
        scratch += np.float32(self.eps)
        np.divide(m, np.float32(b1t), out=upd)
        upd *= np.float32(self.lr)
        upd /= scratch
        for (sl, m_snap, v_snap) in saved:
            m[sl] = m_snap
            v[sl] = v_snap
            upd[sl] = 0.0
        arena.flat -= upd

    def state_export(self) -> Dict[str, object]:
        """Step count plus first/second moments as flat arrays."""
        if self.arena is not None:
            m, v = self._m_flat.copy(), self._v_flat.copy()
        else:
            m, v = self._flatten(self._m), self._flatten(self._v)
        return {"algo": "adam", "t": int(self.t), "m": m, "v": v}

    def state_import(self, state: Dict[str, object]) -> None:
        """Restore step count and moments (resuming training continues them)."""
        if state.get("algo") != "adam":
            raise ValueError(f"not an Adam state: {state.get('algo')!r}")
        self.t = int(state["t"])
        if self.arena is not None:
            m = np.asarray(state["m"], dtype=np.float32)
            v = np.asarray(state["v"], dtype=np.float32)
            if m.size != self.arena.size or v.size != self.arena.size:
                raise ValueError("Adam state size mismatch")
            self._m_flat = m.copy()
            self._v_flat = v.copy()
        else:
            self._m = self._split(np.asarray(state["m"]))
            self._v = self._split(np.asarray(state["v"]))


class CosineSchedule:
    """Cosine learning-rate decay with linear warmup (optional extension)."""

    def __init__(self, optimizer: Optimizer, base_lr: float, total_steps: int, warmup: int = 0):  # noqa: D107
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = max(total_steps, 1)
        self.warmup = warmup
        self.step_num = 0

    def step(self) -> float:
        """Advance one step and set the optimizer's lr; returns the new lr."""
        self.step_num += 1
        if self.warmup and self.step_num <= self.warmup:
            lr = self.base_lr * self.step_num / self.warmup
        else:
            progress = (self.step_num - self.warmup) / max(
                self.total_steps - self.warmup, 1
            )
            progress = min(progress, 1.0)
            lr = 0.5 * self.base_lr * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = lr
        return lr
