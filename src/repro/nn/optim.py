"""Optimizers: Adam (the paper's choice, lr 6.6e-5) and SGD, plus schedulers."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Sequence[Parameter]):  # noqa: D107
        self.params: List[Parameter] = list(params)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0):  # noqa: D107
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """v ← μv + g;  w ← w − lr·v."""
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2014) — the optimizer GraphBinMatch trains with."""

    def __init__(
        self,
        params,
        lr: float = 6.6e-5,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):  # noqa: D107
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Standard bias-corrected Adam update."""
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay > 0:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / b1t
            v_hat = v / b2t
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine learning-rate decay with linear warmup (optional extension)."""

    def __init__(self, optimizer: Optimizer, base_lr: float, total_steps: int, warmup: int = 0):  # noqa: D107
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = max(total_steps, 1)
        self.warmup = warmup
        self.step_num = 0

    def step(self) -> float:
        """Advance one step and set the optimizer's lr; returns the new lr."""
        self.step_num += 1
        if self.warmup and self.step_num <= self.warmup:
            lr = self.base_lr * self.step_num / self.warmup
        else:
            progress = (self.step_num - self.warmup) / max(
                self.total_steps - self.warmup, 1
            )
            progress = min(progress, 1.0)
            lr = 0.5 * self.base_lr * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = lr
        return lr
