"""Checkpointing: save/load module state and whole matchers to ``.npz``.

A checkpoint is a single compressed NumPy archive holding the flat
state-dict (parameters + buffers) plus JSON-encoded metadata (model config,
tokenizer state).  No pickle is involved, so checkpoints are portable and
safe to load from untrusted sources.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, Path]

_META_KEY = "__meta_json__"
_EXTRA_PREFIX = "extra:"


def save_state(
    module: Module,
    path: PathLike,
    meta: Optional[dict] = None,
    extra: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Write a module's state-dict (and optional JSON metadata) to ``path``.

    ``extra`` arrays ride along under an ``extra:`` key prefix — outside
    the module state, so :func:`load_state`'s strict state check ignores
    them (optimizer moments use this; see ``MatchTrainer.save``).  The
    ``.npz`` extension is appended by NumPy if missing.  ``path`` may also
    be a binary file object (e.g. ``BytesIO``): grid workers serialize
    checkpoints to bytes and ship them to the parent's batched store
    writer instead of touching the store themselves.
    """
    state = module.state_dict()
    payload: Dict[str, np.ndarray] = dict(state)
    if extra is not None:
        for key, arr in extra.items():
            payload[f"{_EXTRA_PREFIX}{key}"] = np.asarray(arr)
    if meta is not None:
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
    target = path if hasattr(path, "write") else str(path)
    np.savez_compressed(target, **payload)


def load_state(module: Module, path: PathLike) -> Optional[dict]:
    """Load a checkpoint written by :func:`save_state` into ``module``.

    Returns the metadata dict (or None).  Raises ``KeyError``/``ValueError``
    on any parameter-name or shape mismatch — a checkpoint for a different
    architecture never half-loads.  ``extra:`` arrays are not part of the
    module state; read them with :func:`read_extra`.
    """
    path = _resolve(path)
    with np.load(path) as archive:
        state = {
            k: archive[k]
            for k in archive.files
            if k != _META_KEY and not k.startswith(_EXTRA_PREFIX)
        }
        meta = None
        if _META_KEY in archive.files:
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    module.load_state_dict(state)
    return meta


def read_extra(path: PathLike) -> Dict[str, np.ndarray]:
    """Read the ``extra`` arrays of a checkpoint (empty dict when none)."""
    path = _resolve(path)
    out: Dict[str, np.ndarray] = {}
    with np.load(path) as archive:
        for k in archive.files:
            if k.startswith(_EXTRA_PREFIX):
                out[k[len(_EXTRA_PREFIX) :]] = archive[k]
    return out


def read_meta(path: PathLike) -> Optional[dict]:
    """Read only the metadata of a checkpoint (cheap; no state is loaded)."""
    path = _resolve(path)
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            return None
        return json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))


def config_to_meta(config) -> dict:
    """Serialize a dataclass config to a plain JSON-compatible dict."""
    return dataclasses.asdict(config)


def _resolve(path: PathLike) -> str:
    p = str(path)
    if not p.endswith(".npz") and not Path(p).exists():
        candidate = p + ".npz"
        if Path(candidate).exists():
            return candidate
    return p
