"""Table I — dataset statistics.

Paper: per language, #Sources ≥ #LLVM-IR == #Binary Files ≥ #Decompiled
LLVM-IR (non-compilable submissions are discarded).  This bench builds the
CLCDSA-like and POJ-104-like corpora and prints the same four columns.
"""

from repro.data.corpus import CorpusBuilder, corpus_statistics
from repro.utils.tables import Table

from benchmarks.common import bench_data_cfg, run_once


def _build():
    clcdsa = CorpusBuilder(bench_data_cfg(num_tasks=10, variants=3))
    clcdsa.build(["c", "cpp", "java"])
    poj = CorpusBuilder(bench_data_cfg(num_tasks=10, variants=4))
    poj.build(["cpp"])
    return corpus_statistics(clcdsa), corpus_statistics(poj)


def test_table1_dataset_statistics(benchmark):
    clcdsa_stats, poj_stats = run_once(benchmark, _build)
    table = Table(
        "Table I: Dataset Statistics",
        ["Dataset", "Language", "#Sources", "#LLVM-IR", "#Binary", "#Decompiled"],
    )
    for lang in ("c", "cpp", "java"):
        s = clcdsa_stats[lang]
        table.add_row("CLCDSA", lang, s["sources"], s["llvm_ir"], s["binaries"], s["decompiled"])
    s = poj_stats["cpp"]
    table.add_row("POJ-104", "cpp", s["sources"], s["llvm_ir"], s["binaries"], s["decompiled"])
    print()
    print(table.render())
    # Paper shape: some sources fail to compile, everything compiled decompiles.
    for lang in ("c", "cpp", "java"):
        s = clcdsa_stats[lang]
        assert s["sources"] >= s["llvm_ir"] == s["binaries"] == s["decompiled"]
