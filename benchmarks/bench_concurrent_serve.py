"""Concurrent serving — socket front end + worker pool vs one stdin client.

Not a paper table: this bench backs the concurrent serving layer
(``repro serve --socket``, PR 6).  The stdin service drains one pipe;
the socket service multiplexes N clients over a micro-batching scheduler
and a pool of worker processes sharing one on-disk sharded index.  The
shape asserted here is the one that justifies the subsystem:

* ``NUM_CLIENTS`` clients offering pipelined load sustain ≥ 3× the
  throughput of a single closed-loop client: saturating batches flush on
  size instead of waiting out the latency deadline, one IPC round-trip
  carries ``max_batch`` queries, and the pool spreads batches over
  workers where the machine has cores to spread over;
* every hit list the socket path returns is **bit-identical** to the
  sequential stdin path over the same index — concurrency is an
  optimization, not an approximation.

Per-request p50/p99 latency under concurrency and both throughputs are
recorded in ``benchmarks/perf/BENCH_concurrent_serve.json``.  Set
``REPRO_BENCH_SMOKE=1`` for the reduced-size CI run (same gates).
"""

import base64
import io
import json
import os
import socket
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.trainer import MatchTrainer
from repro.data.corpus import CorpusBuilder
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex, open_index
from repro.serve import RetrievalServer, ServerConfig, create_server
from repro.utils.tables import Table

from benchmarks.common import (
    bench_data_cfg,
    crosslang_dataset,
    run_once,
    trained_gbm,
    write_perf_record,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
NUM_CLIENTS = 8
QUERIES_PER_CLIENT = 4 if SMOKE else 12
CORPUS_TASKS = 12 if SMOKE else 24
CORPUS_SIZE = 24 if SMOKE else 50
TOP_K = 5
# Worker processes are a *parallelism* knob: on a single-core box a second
# CPU-bound worker only adds context-switch churn (measured ~2.5x slower),
# so the bench fits the pool to the machine it runs on.
WORKERS = max(1, min(2, os.cpu_count() or 1))
MAX_DELAY_MS = 10.0  # the --max-delay-ms default
# Same serving-scale model (and model-store key) as bench_serve.py.
SERVE_MODEL = dict(epochs=4, hidden_dim=16, embed_dim=16, num_layers=1)
TIMEOUT = 120.0


class _Client:
    """Minimal JSON-lines client (pipelined or closed-loop use)."""

    def __init__(self, address):
        self.sock = socket.create_connection(tuple(address), timeout=TIMEOUT)
        self.sock.settimeout(TIMEOUT)
        self._buf = b""

    def send(self, request: dict) -> None:
        self.sock.sendall((json.dumps(request) + "\n").encode())

    def recv(self) -> dict:
        while b"\n" not in self._buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return json.loads(line)

    def ask(self, request: dict) -> dict:
        self.send(request)
        return self.recv()

    def close(self):
        self.sock.close()


def _requests(samples, count, prefix):
    return [
        {
            "id": f"{prefix}-{i}",
            "binary_b64": base64.b64encode(
                samples[i % len(samples)].binary_bytes
            ).decode(),
            "k": TOP_K,
        }
        for i in range(count)
    ]


def _closed_loop(address, requests, latencies_out, responses_out):
    client = _Client(address)
    try:
        for req in requests:
            t0 = time.perf_counter()
            resp = client.ask(req)
            latencies_out.append(time.perf_counter() - t0)
            responses_out.append(resp)
    finally:
        client.close()


def _pipelined(address, requests, responses_out):
    client = _Client(address)
    try:
        for req in requests:
            client.send(req)
        responses_out.extend(client.recv() for _ in requests)
    finally:
        client.close()


def _run():
    dataset, _ = crosslang_dataset(("c",), ("java",), num_tasks=12, variants=2)
    trainer = trained_gbm("serve-throughput", dataset, **SERVE_MODEL)
    corpus = CorpusBuilder(bench_data_cfg(num_tasks=CORPUS_TASKS, variants=2)).build(
        ["c", "java"]
    )
    binaries = [s for s in corpus if s.language == "c"]
    sources = [s for s in corpus if s.language == "java"][:CORPUS_SIZE]

    with tempfile.TemporaryDirectory(prefix="repro-bench-cserve-") as tmp:
        checkpoint = Path(tmp) / "model.npz"
        trainer.save(checkpoint)
        mono = EmbeddingIndex(trainer)
        mono.add(
            [s.source_graph for s in sources],
            metas=[{"id": s.identifier} for s in sources],
        )
        ShardedEmbeddingIndex.from_index(mono, Path(tmp) / "index", 13)

        config = ServerConfig(
            checkpoint=str(checkpoint),
            index_path=str(Path(tmp) / "index"),
            port=0,
            workers=WORKERS,
            max_batch=NUM_CLIENTS,
            max_delay_ms=MAX_DELAY_MS,
            queue_depth=256,
            default_k=TOP_K,
        )
        single_requests = _requests(binaries, NUM_CLIENTS * QUERIES_PER_CLIENT, "s")
        with create_server(config) as server:
            # Warm-up: materialize the lazy shards and fault in worker code
            # paths, so neither timed phase pays one-time costs.
            _closed_loop(server.address, _requests(binaries, 2, "w"), [], [])

            # Phase 1: one closed-loop client, every request in sequence —
            # each request waits out its own deadline flush and pays its
            # own IPC round-trip.
            single_lat, single_resp = [], []
            t0 = time.perf_counter()
            _closed_loop(server.address, single_requests, single_lat, single_resp)
            single_s = time.perf_counter() - t0

            # Phase 2: NUM_CLIENTS clients, each pipelining its queries —
            # the offered load saturates the scheduler, so batches flush
            # full on size.  This is the throughput gate.
            threads, failures = [], []
            per_client = [
                (_requests(binaries, QUERIES_PER_CLIENT, f"c{ci}"), [])
                for ci in range(NUM_CLIENTS)
            ]

            def run_pipelined(reqs, out):
                try:
                    _pipelined(server.address, reqs, out)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(f"{type(exc).__name__}: {exc}")

            t0 = time.perf_counter()
            for reqs, out in per_client:
                t = threading.Thread(target=run_pipelined, args=(reqs, out))
                t.start()
                threads.append(t)
            for t in threads:
                t.join(timeout=TIMEOUT)
            concurrent_s = time.perf_counter() - t0

            # Phase 3: NUM_CLIENTS closed-loop clients for honest
            # per-request latency under concurrency (recorded, not gated —
            # closed-loop arrival phasing is noisy on a loaded box).
            conc_lat, lat_threads = [], []

            def run_latency(reqs):
                try:
                    _closed_loop(server.address, reqs, conc_lat, [])
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(f"{type(exc).__name__}: {exc}")

            for ci in range(NUM_CLIENTS):
                t = threading.Thread(
                    target=run_latency,
                    args=(_requests(binaries, QUERIES_PER_CLIENT, f"l{ci}"),),
                )
                t.start()
                lat_threads.append(t)
            for t in lat_threads:
                t.join(timeout=TIMEOUT)
            snap = server.stats_snapshot()

        # Parity baseline: the sequential stdin path over the same index.
        stdin_server = RetrievalServer(
            MatchTrainer.load(checkpoint),
            open_index(Path(tmp) / "index", trainer),
            batch_size=NUM_CLIENTS,
            default_k=TOP_K,
        )
        out = io.StringIO()
        stdin_server.serve(
            io.StringIO("".join(json.dumps(r) + "\n" for r in single_requests)), out
        )
        stdin_resp = [json.loads(line) for line in out.getvalue().splitlines()]

    total = NUM_CLIENTS * QUERIES_PER_CLIENT
    conc_lat.sort()
    return {
        "failures": failures,
        "single_s": single_s,
        "concurrent_s": concurrent_s,
        "single_qps": total / single_s,
        "concurrent_qps": total / concurrent_s,
        "p50_ms": 1000 * conc_lat[len(conc_lat) // 2],
        "p99_ms": 1000 * conc_lat[min(len(conc_lat) - 1, int(len(conc_lat) * 0.99))],
        "socket_responses": single_resp,
        "stdin_responses": stdin_resp,
        "client_responses": [out for _, out in per_client],
        "shed": snap["shed"],
        "batch_deadline_flushes": snap["flushed_on_deadline"],
    }


def test_concurrent_serve_throughput(benchmark):
    r = run_once(benchmark, _run)
    total = NUM_CLIENTS * QUERIES_PER_CLIENT
    table = Table(
        f"Socket serving: {total} binary queries, {WORKERS} workers",
        ["Clients", "Wall s", "Queries/s", "Speedup"],
    )
    table.add_row("1 (closed loop)", round(r["single_s"], 3),
                  round(r["single_qps"], 1), 1.0)
    table.add_row(
        f"{NUM_CLIENTS} (pipelined)",
        round(r["concurrent_s"], 3),
        round(r["concurrent_qps"], 1),
        round(r["concurrent_qps"] / r["single_qps"], 1),
    )
    print()
    print(table.render())
    print(f"p50 {r['p50_ms']:.1f} ms   p99 {r['p99_ms']:.1f} ms under "
          f"{NUM_CLIENTS} clients")

    assert not r["failures"], r["failures"]
    # Every client got every response, in its own request order.
    for ci, responses in enumerate(r["client_responses"]):
        assert [resp["id"] for resp in responses] == [
            f"c{ci}-{i}" for i in range(QUERIES_PER_CLIENT)
        ]
        assert all("hits" in resp for resp in responses)
    # Concurrency is an optimization, not an approximation: the socket path
    # returns bit-identical responses to the sequential stdin path.
    assert r["socket_responses"] == r["stdin_responses"]
    # Nothing was shed at this load, and batching really engaged.
    assert r["shed"] == 0
    # The multiplexed path must clearly beat one client at a time.  The
    # gain is amortizing per-request overhead (deadline flush + IPC) that
    # batching cannot touch in the irreducible per-query graph/scoring
    # work, so the floor is conservative at full scale where that
    # irreducible share is larger.
    speedup = r["concurrent_qps"] / r["single_qps"]
    floor = 3.0 if SMOKE else 2.0
    assert speedup >= floor, f"concurrent path only {speedup:.1f}x one client"

    write_perf_record(
        "concurrent_serve",
        {
            "smoke": SMOKE,
            "num_clients": NUM_CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "workers": WORKERS,
            "corpus_size": CORPUS_SIZE,
            "single_qps": r["single_qps"],
            "concurrent_qps": r["concurrent_qps"],
            "concurrent_speedup": r["concurrent_qps"] / r["single_qps"],
            "p50_ms": r["p50_ms"],
            "p99_ms": r["p99_ms"],
        },
    )
