"""Design-choice ablations (DESIGN.md §5): cross-relation aggregation,
GNN depth, and the edge-position feature.

Not in the paper's tables — these probe the architecture decisions the
paper asserts (max aggregation, 5 layers, position features) at CPU scale.
"""

from repro.eval.experiments import run_graphbinmatch
from repro.utils.tables import Table

from benchmarks.common import bench_model_config, crosslang_dataset, run_once


def _run_aggregation():
    ds, _ = crosslang_dataset(("c",), ("java",), num_tasks=8)
    return {
        agg: run_graphbinmatch(ds, bench_model_config(aggregate=agg, epochs=8))
        for agg in ("max", "sum", "mean")
    }


def test_ablation_aggregation(benchmark):
    results = run_once(benchmark, _run_aggregation)
    table = Table("Ablation: cross-relation aggregation", ["Aggregate", "P", "R", "F1"])
    for agg, r in results.items():
        table.add_row(agg, *r.row)
    print()
    print(table.render())


def _run_depth():
    ds, _ = crosslang_dataset(("c",), ("java",), num_tasks=8)
    return {
        depth: run_graphbinmatch(ds, bench_model_config(num_layers=depth, epochs=8))
        for depth in (1, 3, 5)
    }


def test_ablation_depth(benchmark):
    results = run_once(benchmark, _run_depth)
    table = Table("Ablation: number of GATv2 layers", ["Layers", "P", "R", "F1"])
    for depth, r in results.items():
        table.add_row(depth, *r.row)
    print()
    print(table.render())


def _run_positions():
    ds, _ = crosslang_dataset(("c",), ("java",), num_tasks=8)
    return {
        flag: run_graphbinmatch(ds, bench_model_config(use_positions=flag, epochs=8))
        for flag in (True, False)
    }


def test_ablation_edge_positions(benchmark):
    results = run_once(benchmark, _run_positions)
    table = Table("Ablation: edge position feature", ["Positions", "P", "R", "F1"])
    for flag, r in results.items():
        table.add_row(str(flag), *r.row)
    print()
    print(table.render())


def _run_pair_features():
    ds, _ = crosslang_dataset(("c",), ("java",), num_tasks=8)
    return {
        mode: run_graphbinmatch(ds, bench_model_config(pair_features=mode, epochs=8))
        for mode in ("concat", "interaction")
    }


def test_ablation_pair_features(benchmark):
    """The CPU-scale conditioning substitution (DESIGN.md): the paper's
    plain concat head vs concat ⊕ |a-b| ⊕ a*b."""
    results = run_once(benchmark, _run_pair_features)
    table = Table("Ablation: pair head features", ["Head", "P", "R", "F1"])
    for mode, r in results.items():
        table.add_row(mode, *r.row)
    print()
    print(table.render())
