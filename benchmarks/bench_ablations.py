"""Design-choice ablations (DESIGN.md §5): cross-relation aggregation,
GNN depth, and the edge-position feature.

Not in the paper's tables — these probe the architecture decisions the
paper asserts (max aggregation, 5 layers, position features) at CPU scale.
"""

from repro.utils.tables import Table

from benchmarks.common import crosslang_dataset, gbm_grid, run_once


def _sweep(param: str, values) -> dict:
    """One ablation sweep through the experiment runner's grid.

    Every configuration is an independent training, so the sweep rides the
    model store (warm rebenches load instead of retrain) and can fan cold
    trainings across worker processes with identical results.
    """
    ds, _ = crosslang_dataset(("c",), ("java",), num_tasks=8)
    jobs = [
        (f"abl-{param}-{value}", ds, {param: value, "epochs": 8}) for value in values
    ]
    return dict(zip(values, gbm_grid(jobs)))


def _run_aggregation():
    return _sweep("aggregate", ("max", "sum", "mean"))


def test_ablation_aggregation(benchmark):
    results = run_once(benchmark, _run_aggregation)
    table = Table("Ablation: cross-relation aggregation", ["Aggregate", "P", "R", "F1"])
    for agg, r in results.items():
        table.add_row(agg, *r.row)
    print()
    print(table.render())


def _run_depth():
    return _sweep("num_layers", (1, 3, 5))


def test_ablation_depth(benchmark):
    results = run_once(benchmark, _run_depth)
    table = Table("Ablation: number of GATv2 layers", ["Layers", "P", "R", "F1"])
    for depth, r in results.items():
        table.add_row(depth, *r.row)
    print()
    print(table.render())


def _run_positions():
    return _sweep("use_positions", (True, False))


def test_ablation_edge_positions(benchmark):
    results = run_once(benchmark, _run_positions)
    table = Table("Ablation: edge position feature", ["Positions", "P", "R", "F1"])
    for flag, r in results.items():
        table.add_row(str(flag), *r.row)
    print()
    print(table.render())


def _run_pair_features():
    return _sweep("pair_features", ("concat", "interaction"))


def test_ablation_pair_features(benchmark):
    """The CPU-scale conditioning substitution (DESIGN.md): the paper's
    plain concat head vs concat ⊕ |a-b| ⊕ a*b."""
    results = run_once(benchmark, _run_pair_features)
    table = Table("Ablation: pair head features", ["Head", "P", "R", "F1"])
    for mode, r in results.items():
        table.add_row(mode, *r.row)
    print()
    print(table.render())
