"""Figure 3 — precision/recall/F1 as the decision threshold varies.

Paper: recall falls and precision rises with the threshold; F1 has a broad
plateau with a slight peak below 0.5 (the paper saw ~0.2 best-F1 but chose
0.5 for accuracy).  This bench prints the full series.
"""

import numpy as np

from repro.eval.experiments import run_graphbinmatch
from repro.eval.threshold import sweep_thresholds
from repro.utils.tables import Table

from benchmarks.common import bench_model_config, crosslang_dataset, run_once, trained_gbm


def _run():
    ds, _ = crosslang_dataset(("c", "cpp"), ("java",))
    result = run_graphbinmatch(
        ds, bench_model_config(), trainer=trained_gbm("cross-fwd", ds)
    )
    return sweep_thresholds(result.labels, result.scores)


def test_fig3_threshold_sweep(benchmark):
    points = run_once(benchmark, _run)
    table = Table(
        "Figure 3: metric vs decision threshold",
        ["Threshold", "Precision", "Recall", "F1", "Accuracy"],
    )
    for p in points:
        table.add_row(p.threshold, p.precision, p.recall, p.f1, p.accuracy)
    print()
    print(table.render())
    recalls = [p.recall for p in points]
    # Paper shape: recall is non-increasing in the threshold.
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
