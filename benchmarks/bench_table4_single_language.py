"""Table IV — single-language (C++) binary-source matching on POJ-104.

Paper: BinPro 0.40, B2SFinder 0.44, XLIR(LSTM) 0.44, XLIR(Transformer)
0.85, GraphBinMatch 0.87 (F1).  Shape: same-language matching is easier
than cross-language for everyone; GraphBinMatch stays on top.
"""

from repro.baselines.xlir import XLIRConfig
from repro.eval.experiments import run_feature_baseline, run_xlir
from repro.utils.tables import Table

from benchmarks.common import BENCH_SEED, gbm_result, poj_dataset, run_once


def _run():
    ds, _ = poj_dataset("O0", "clang")
    results = [
        run_feature_baseline(ds, "BinPro"),
        run_feature_baseline(ds, "B2SFinder"),
        run_xlir(ds, "transformer", XLIRConfig(seed=BENCH_SEED)),
        # GraphBinMatch goes through the experiment runner: the trained
        # model is served from the cross-process model store when warm.
        gbm_result("poj-O0-clang", ds, epochs=16),
    ]
    return results


def test_table4_single_language_matching(benchmark):
    results = run_once(benchmark, _run)
    table = Table(
        "Table IV: single-language binary matching (POJ-104-like, calibrated threshold)",
        ["System", "Precision", "Recall", "F1"],
    )
    for r in results:
        table.add_row(r.system, *r.row)
    print()
    print(table.render())
    by_name = {r.system: r for r in results}
    assert by_name["GraphBinMatch"].metrics.f1 >= by_name["BinPro"].metrics.f1
