"""Table VIII — `text` vs `full_text` node-feature ablation.

Paper: full_text beats text on both tasks (cross-language 0.74 → 0.79 F1;
same-language 0.85 → 0.88), with the bigger gain cross-language.  Shape:
full_text ≥ text.
"""

from repro.eval.experiments import run_graphbinmatch
from repro.utils.tables import Table

from benchmarks.common import bench_model_config, crosslang_dataset, poj_dataset, run_once


def _run():
    cross, _ = crosslang_dataset(("c", "cpp"), ("java",))
    same, _ = poj_dataset("O0", "clang")
    out = {}
    for mode in ("text", "full_text"):
        cfg = bench_model_config(feature_mode=mode, epochs=16)
        out[("cross", mode)] = run_graphbinmatch(cross, cfg)
        out[("same", mode)] = run_graphbinmatch(same, cfg)
    return out


def test_table8_embedding_ablation(benchmark):
    results = run_once(benchmark, _run)
    table = Table(
        "Table VIII: node-feature ablation (text vs full_text)",
        ["Feature", "Cpp-vs-Cpp P", "R", "F1", "C/C++-vs-Java P", "R", "F1"],
    )
    for mode in ("text", "full_text"):
        same = results[("same", mode)]
        cross = results[("cross", mode)]
        table.add_row(mode, *same.row, *cross.row)
    print()
    print(table.render())
