"""Retrieval scaling — pairwise re-encoding vs the embedding index.

Not a paper table: this bench backs the repo's retrieval subsystem
(``repro.index``).  The paper's headline use cases are retrieval workflows
(find the source for a binary fragment, §I), and the naive evaluator
re-runs the full GNN encoder for every (query, candidate) pair — O(Q×C)
encoder forwards.  The siamese structure makes that redundant: encode each
graph once, re-run only the pair head per pair.

The bench ranks ``NUM_QUERIES`` binary queries against growing source
corpora both ways and reports wall-clock plus *encoder forward passes*
(graphs pushed through the GNN, read from
``GraphBinMatch.encoder_graph_count``).  Asserted shape at the largest
corpus (50 candidates):

* index scores match pairwise scores to 1e-5 — same model, same numbers;
* the index path runs ≥ 5× fewer encoder forwards (it is O(Q+C) = 58
  versus O(2·Q·C) = 800 here).
"""

import time

import numpy as np

from repro.data.corpus import CorpusBuilder
from repro.data.pairs import MatchingPair
from repro.index import EmbeddingIndex
from repro.utils.tables import Table

from benchmarks.common import bench_data_cfg, crosslang_dataset, run_once, trained_gbm

CORPUS_SIZES = (10, 25, 50)
NUM_QUERIES = 8


def _run():
    dataset, _ = crosslang_dataset(("c",), ("java",), num_tasks=12, variants=2)
    trainer = trained_gbm("retrieval-scaling", dataset, epochs=6)
    # The retrieval corpus is larger than the training corpus on purpose:
    # scaling candidates is the variable under test.
    corpus = CorpusBuilder(bench_data_cfg(num_tasks=24, variants=3)).build(["c", "java"])
    sources = [s.source_graph for s in corpus if s.language == "java"]
    queries = [s.decompiled_graph for s in corpus if s.language == "c"][:NUM_QUERIES]
    assert len(sources) >= max(CORPUS_SIZES) and len(queries) == NUM_QUERIES
    model = trainer.model

    rows = []
    for size in CORPUS_SIZES:
        candidates = sources[:size]

        model.encoder_graph_count = 0
        t0 = time.perf_counter()
        pairwise = np.stack(
            [
                trainer.predict([MatchingPair(q, c, 0, "?", "?") for c in candidates])
                for q in queries
            ]
        )
        pairwise_s = time.perf_counter() - t0
        pairwise_encodes = model.encoder_graph_count

        model.encoder_graph_count = 0
        t0 = time.perf_counter()
        index = EmbeddingIndex(trainer)
        index.add(candidates)
        indexed = np.stack([index.scores(q) for q in queries])
        index_s = time.perf_counter() - t0
        index_encodes = model.encoder_graph_count

        rows.append(
            {
                "size": size,
                "pairwise_s": pairwise_s,
                "pairwise_encodes": pairwise_encodes,
                "index_s": index_s,
                "index_encodes": index_encodes,
                "speedup": pairwise_s / index_s if index_s else float("inf"),
                "max_diff": float(np.abs(pairwise - indexed).max()),
            }
        )
    return rows


def test_retrieval_scaling(benchmark):
    rows = run_once(benchmark, _run)
    table = Table(
        f"Retrieval scaling: {NUM_QUERIES} binary queries, pairwise vs embedding index",
        ["Candidates", "Pairwise s", "Encodes", "Index s", "Encodes", "Speedup", "Max |Δscore|"],
    )
    for r in rows:
        table.add_row(
            r["size"],
            round(r["pairwise_s"], 3),
            r["pairwise_encodes"],
            round(r["index_s"], 3),
            r["index_encodes"],
            round(r["speedup"], 1),
            f"{r['max_diff']:.2e}",
        )
    print()
    print(table.render())
    largest = rows[-1]
    assert largest["size"] == 50
    # Same model, same numbers: the index only skips redundant encoding.
    assert largest["max_diff"] <= 1e-5
    # Encode-once: O(Q+C) forwards beats O(2·Q·C) by ≥ 5× at 50 candidates.
    assert largest["pairwise_encodes"] >= 5 * largest["index_encodes"]
