"""Serving throughput — per-query topk vs batched topk_batch vs sharded.

Not a paper table: this bench backs the serving layer (``repro serve``,
PR 3).  A retrieval service drains a queue of pipelined queries, and the
per-query loop pays the per-call costs — tokenization, graph batching,
segment setup, a small encoder forward — once per request.
``topk_batch`` runs one batched encoder pass plus one tiled pair-head
pass for the whole queue; :class:`ShardedEmbeddingIndex` adds lazy
multi-shard storage on top and must not change a single score.

Workload: ``NUM_QUERIES`` *source fragment* queries (the paper's
vulnerable-source lookup direction, §I — fragment-scale graphs, median
~130 nodes) against ``CORPUS_SIZE`` indexed source candidates, scored by
the compact serving-scale model configuration.  Asserted shape:

* batched ``topk_batch`` is ≥ 3× faster than the per-query ``topk`` loop
  (typically ~5× here), with identical rankings;
* the sharded index returns **bit-identical** scores (and therefore
  identical rankings) to the monolithic index it was sharded from, while
  loading its shards lazily.
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.corpus import CorpusBuilder
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex
from repro.utils.tables import Table

from benchmarks.common import (
    bench_data_cfg,
    crosslang_dataset,
    run_once,
    trained_gbm,
    write_perf_record,
)

NUM_QUERIES = 32
CORPUS_SIZE = 50
SHARD_ENTRIES = 13  # deliberately not a divisor of CORPUS_SIZE
TOP_K = 10
# The serving-scale model: batching amortizes per-request overhead, so the
# bench runs the smallest config the repo would realistically serve.
SERVE_MODEL = dict(epochs=4, hidden_dim=16, embed_dim=16, num_layers=1)


def _hit_orders(rankings):
    return [[h.index for h in hits] for hits in rankings]


def _run():
    dataset, _ = crosslang_dataset(("c",), ("java",), num_tasks=12, variants=2)
    trainer = trained_gbm("serve-throughput", dataset, **SERVE_MODEL)
    corpus = CorpusBuilder(bench_data_cfg(num_tasks=24, variants=3)).build(["c", "java"])
    sources = [s for s in corpus if s.language == "java"]
    candidates = [s.source_graph for s in sources][:CORPUS_SIZE]
    metas = [{"id": s.identifier} for s in sources][:CORPUS_SIZE]
    queries = [s.source_graph for s in corpus if s.language == "c"][:NUM_QUERIES]
    assert len(candidates) == CORPUS_SIZE and len(queries) == NUM_QUERIES

    # Candidate encoding is index-build time, not serving time: each path
    # gets a pre-built index and only the query phase is timed.
    per_index = EmbeddingIndex(trainer)
    per_index.add(candidates, metas=metas)
    batch_index = EmbeddingIndex(trainer)
    batch_index.add(candidates, metas=metas)

    t0 = time.perf_counter()
    per_query = [per_index.topk(q, k=TOP_K) for q in queries]
    per_query_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = batch_index.topk_batch(queries, k=TOP_K)
    batched_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
        ShardedEmbeddingIndex.from_index(batch_index, Path(tmp) / "idx", SHARD_ENTRIES)
        sharded = ShardedEmbeddingIndex.open(Path(tmp) / "idx", trainer)
        resident_before = sharded.resident_shards
        t0 = time.perf_counter()
        sharded_hits = sharded.topk_batch(queries, k=TOP_K)
        sharded_s = time.perf_counter() - t0
        mono_scores = batch_index.scores_batch(queries)
        shard_scores = sharded.scores_batch(queries)

    return {
        "per_query_s": per_query_s,
        "batched_s": batched_s,
        "sharded_s": sharded_s,
        "num_shards": int(np.ceil(CORPUS_SIZE / SHARD_ENTRIES)),
        "resident_before": resident_before,
        "orders_per_query": _hit_orders(per_query),
        "orders_batched": _hit_orders(batched),
        "orders_sharded": _hit_orders(sharded_hits),
        "scores_equal": bool(np.array_equal(mono_scores, shard_scores)),
    }


def test_serve_throughput(benchmark):
    r = run_once(benchmark, _run)
    table = Table(
        f"Serving: {NUM_QUERIES} source-fragment queries x {CORPUS_SIZE} candidates",
        ["Path", "Wall s", "Queries/s", "Speedup"],
    )
    for label, secs in (
        ("per-query topk loop", r["per_query_s"]),
        ("batched topk_batch", r["batched_s"]),
        (f"sharded x{r['num_shards']} topk_batch", r["sharded_s"]),
    ):
        table.add_row(
            label,
            round(secs, 3),
            round(NUM_QUERIES / secs, 1) if secs else float("inf"),
            round(r["per_query_s"] / secs, 1) if secs else float("inf"),
        )
    print()
    print(table.render())

    # Batching is an optimization, not an approximation: same rankings.
    assert r["orders_batched"] == r["orders_per_query"]
    # One batched encoder + pair-head pass beats Q separate ones ≥ 3x.
    assert r["batched_s"] * 3 <= r["per_query_s"], (
        f"batched path only {r['per_query_s'] / r['batched_s']:.1f}x faster"
    )
    # Sharding must not perturb a single bit: exact scores, same rankings,
    # and the shards really were lazy until the first query touched them.
    assert r["scores_equal"]
    assert r["orders_sharded"] == r["orders_batched"]
    assert r["resident_before"] == 0

    write_perf_record(
        "serve",
        {
            "per_query_s": r["per_query_s"],
            "batched_s": r["batched_s"],
            "sharded_s": r["sharded_s"],
            "batched_speedup": r["per_query_s"] / r["batched_s"],
            "num_queries": NUM_QUERIES,
            "corpus_size": CORPUS_SIZE,
            "num_shards": r["num_shards"],
        },
    )
