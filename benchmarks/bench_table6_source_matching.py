"""Table VI — cross-language source-to-source matching (RQ4).

Paper: GraphBinMatch F1 0.78/0.79/0.78 on C vs Java, C++ vs Java, C/C++ vs
Java — beating XLIR(Transformer) 0.63/0.66 and XLIR(LSTM) 0.56/0.58.
LICCA is the classical source-level comparator.  Shape: the GNN wins on
source-source too.
"""

from repro.baselines.xlir import XLIRConfig
from repro.eval.experiments import run_feature_baseline, run_graphbinmatch, run_xlir
from repro.utils.tables import Table

from benchmarks.common import BENCH_SEED, bench_model_config, run_once, source_source_dataset

COMBOS = [
    ("C vs Java", ("c",), ("java",)),
    ("C++ vs Java", ("cpp",), ("java",)),
    ("C/C++ vs Java", ("c", "cpp"), ("java",)),
]


def _run():
    out = {}
    cfg = bench_model_config(epochs=18)
    for name, left, right in COMBOS:
        ds, _ = source_source_dataset(left, right)
        out[name] = {
            "GraphBinMatch": run_graphbinmatch(ds, cfg),
            "LICCA": run_feature_baseline(ds, "LICCA"),
        }
    # XLIR on the C++ vs Java combo (the paper's middle row)
    ds, _ = source_source_dataset(("cpp",), ("java",))
    out["C++ vs Java"]["XLIR(Transformer)"] = run_xlir(ds, "transformer", XLIRConfig(seed=BENCH_SEED))
    return out


def test_table6_source_to_source(benchmark):
    results = run_once(benchmark, _run)
    table = Table(
        "Table VI: cross-language source matching",
        ["Pair", "System", "Precision", "Recall", "F1"],
    )
    for combo, systems in results.items():
        for name, r in systems.items():
            table.add_row(combo, name, *r.row)
    print()
    print(table.render())
    mid = results["C++ vs Java"]
    assert mid["GraphBinMatch"].metrics.f1 >= mid["LICCA"].metrics.f1 - 0.15
