"""Table VII — node-count statistics per confusion cell (failure analysis).

Paper: the median node-count difference for false positives is ~50% larger
than for true positives — size mismatch is the dominant failure mode.
Shape: FP/FN pairs show a larger node-count gap than TP pairs.
"""

import numpy as np

from repro.eval.analysis import node_count_statistics
from repro.eval.experiments import run_graphbinmatch
from repro.utils.tables import Table

from benchmarks.common import bench_model_config, crosslang_dataset, run_once, trained_gbm


def _run():
    ds, _ = crosslang_dataset(("c", "cpp"), ("java",))
    result = run_graphbinmatch(
        ds, bench_model_config(), trainer=trained_gbm("cross-fwd", ds)
    )
    stats = node_count_statistics(
        ds.test, result.labels, result.scores >= result.threshold
    )
    return stats


def test_table7_node_count_statistics(benchmark):
    stats = run_once(benchmark, _run)
    table = Table(
        "Table VII: node counts per confusion cell (test set)",
        ["Cell", "Count", "Mean nodes", "Median nodes", "Mean |ΔN|", "Median |ΔN|"],
    )
    for cell in ("true_positive", "false_positive", "true_negative", "false_negative"):
        s = stats[cell]
        table.add_row(
            cell, s["count"], s["mean_nodes"], s["median_nodes"],
            s["mean_diff"], s["median_diff"],
        )
    print()
    print(table.render())
    assert sum(stats[c]["count"] for c in stats) > 0
