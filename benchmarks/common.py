"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure at CPU scale: corpora and
trained systems are cached per-process so the suite shares work, and every
bench prints the same rows its paper counterpart reports.  Absolute numbers
differ from the paper (simulated substrate, scaled model); the *shape* —
which system wins, how metrics move across conditions — is the target.

Protocol notes (documented in EXPERIMENTS.md):

* every system — GraphBinMatch included — picks its decision threshold on
  the validation split (§V-A allows this);
* training pairs are balanced, evaluation pairs negative-heavy (3:1), so
  the degenerate all-positive predictor's F1 floor sits at 0.4 instead of
  0.67 and weak systems are not compressed onto one number;
* GraphBinMatch trains with early stopping on validation F1.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.config import DataConfig, cpu_config, scaled
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import (
    ExperimentResult,
    build_crosslang_dataset,
    build_single_language_dataset,
    build_source_source_dataset,
    run_graphbinmatch,
)
from repro.exec import ExperimentRun, ExperimentSpec, ModelStore, run_experiment, run_grid

BENCH_SEED = 7

# Cross-language tables (III, VI, VII, VIII, Fig. 3) use the full-size
# corpus; the single-language grid (IV, V) trains ten models, so it runs on
# a smaller one — same-language matching is the easier task (paper F1 0.87
# vs 0.79) and keeps its shape at this scale.
CROSS_TASKS = 24
SINGLE_TASKS = 12
VARIANTS = 2
MAX_PAIRS = 4

# Compilation artifacts persist across bench *processes*: every bench (and
# every sweep condition) that rebuilds the same (task, variant, language,
# opt, compiler) coordinates loads it from here instead of re-running the
# pipeline.  Override the location with REPRO_ARTIFACT_CACHE; set it empty
# to disable caching entirely.
ARTIFACT_CACHE = os.environ.get(
    "REPRO_ARTIFACT_CACHE", str(Path(__file__).resolve().parent / ".artifact_cache")
)

# Trained models persist across bench processes the same way: every bench
# that trains the same (config, dataset) coordinates loads the finished
# checkpoint from this content-addressed model store instead of retraining
# (invalidation is by experiment fingerprint — config + dataset content +
# RUNNER_VERSION).  Override with REPRO_MODEL_CACHE; set it empty to
# disable and retrain per process.
MODEL_CACHE = os.environ.get(
    "REPRO_MODEL_CACHE", str(Path(__file__).resolve().parent / ".model_cache")
)

# Worker processes for fanning out the independent trainings of a grid
# bench (Table IV/V, the ablations).  Parallel output is identical to
# serial — workers only fill the model store — so this is purely a
# wall-clock knob: pool fan-out only pays off with real cores to spread
# over, so a single-CPU box defaults to in-process serial.
_CORES = multiprocessing.cpu_count()
TRAIN_WORKERS = int(
    os.environ.get("REPRO_TRAIN_WORKERS", str(min(4, _CORES) if _CORES > 1 else 0))
    or "0"
)


def bench_model_config(**overrides):
    """The scaled GraphBinMatch config the benches train."""
    base = scaled(cpu_config(seed=BENCH_SEED), epochs=25, batch_pairs=8)
    return scaled(base, **overrides) if overrides else base


def bench_data_cfg(num_tasks: int = CROSS_TASKS, variants: int = VARIANTS, **kw) -> DataConfig:
    """The scaled corpus config (corpus builds hit the shared artifact cache)."""
    kw.setdefault("artifact_dir", ARTIFACT_CACHE or None)
    return DataConfig(
        num_tasks=num_tasks,
        variants=variants,
        seed=BENCH_SEED,
        max_pairs_per_task=MAX_PAIRS,
        **kw,
    )


@lru_cache(maxsize=None)
def crosslang_dataset(binary_langs: Tuple[str, ...], source_langs: Tuple[str, ...],
                      num_tasks: int = CROSS_TASKS, variants: int = VARIANTS):
    """Cached CLCDSA-style binary↔source dataset."""
    return build_crosslang_dataset(
        bench_data_cfg(num_tasks, variants), list(binary_langs), list(source_langs)
    )


@lru_cache(maxsize=None)
def source_source_dataset(left: Tuple[str, ...], right: Tuple[str, ...],
                          num_tasks: int = CROSS_TASKS, variants: int = VARIANTS):
    """Cached CLCDSA-style source↔source dataset."""
    return build_source_source_dataset(
        bench_data_cfg(num_tasks, variants), list(left), list(right)
    )


@lru_cache(maxsize=None)
def poj_dataset(opt_level: str = "O0", compiler: str = "clang",
                num_tasks: int = SINGLE_TASKS, variants: int = VARIANTS):
    """Cached POJ-104-style single-language dataset."""
    return build_single_language_dataset(
        bench_data_cfg(num_tasks, variants), opt_level=opt_level, compiler=compiler
    )


# --------------------------------------------------------------- training
@lru_cache(maxsize=None)
def model_store() -> "ModelStore | None":
    """The shared cross-process trained-model store (None when disabled)."""
    return ModelStore(MODEL_CACHE) if MODEL_CACHE else None


_RUNS: Dict[tuple, ExperimentRun] = {}


def gbm_experiment(dataset_key: str, dataset, **config_overrides) -> ExperimentRun:
    """One experiment-runner training run, cached at two levels.

    In-process, ``dataset_key`` + overrides memoize the :class:`ExperimentRun`
    (benches that evaluate the same trained model — Table III forward,
    Table VII, Figure 3 — share one object).  Across processes the runner's
    content-addressed :func:`model_store` serves the finished checkpoint, so
    the whole bench suite trains each (config, dataset) exactly once.
    """
    key = (dataset_key, tuple(sorted(config_overrides.items())))
    if key not in _RUNS:
        spec = ExperimentSpec(dataset_key, bench_model_config(**config_overrides))
        _RUNS[key] = run_experiment(spec, dataset, store=model_store())
    return _RUNS[key]


def trained_gbm(dataset_key: str, dataset, **config_overrides) -> MatchTrainer:
    """Trained GraphBinMatch for a dataset, via the runner/model cache."""
    return gbm_experiment(dataset_key, dataset, **config_overrides).trainer


def gbm_result(dataset_key: str, dataset, **config_overrides) -> ExperimentResult:
    """Train-or-load GraphBinMatch and evaluate it on the dataset's test split."""
    run = gbm_experiment(dataset_key, dataset, **config_overrides)
    return run_graphbinmatch(dataset, run.spec.config, trainer=run.trainer)


def gbm_grid(
    jobs: Sequence[Tuple[str, object, dict]], workers: "int | None" = None
) -> List[ExperimentResult]:
    """Evaluate a grid of independent trainings through the runner.

    ``jobs`` is ``(dataset_key, dataset, config_overrides)`` per entry.
    Cold runs fan out over ``workers`` processes (default
    :data:`TRAIN_WORKERS`); output is identical to serial because workers
    only fill the model store and results are materialized in order.
    """
    workers = TRAIN_WORKERS if workers is None else workers
    specs = [
        (ExperimentSpec(key, bench_model_config(**overrides)), dataset)
        for key, dataset, overrides in jobs
    ]
    runs = run_grid(specs, store=model_store(), workers=workers)
    for (key, _, overrides), run in zip(jobs, runs):
        _RUNS.setdefault((key, tuple(sorted(overrides.items()))), run)
    return [
        run_graphbinmatch(dataset, run.spec.config, trainer=run.trainer)
        for (_, dataset, _o), run in zip(jobs, runs)
    ]


# ------------------------------------------------------------ perf records
PERF_DIR = Path(__file__).resolve().parent / "perf"


def write_perf_record(name: str, record: dict) -> Path:
    """Merge a perf record into ``benchmarks/perf/BENCH_<name>.json``.

    Every gate bench writes its measured speedups/wall-clocks here, so the
    perf trajectory of the hot paths is tracked run over run instead of
    living only in scrollback.  Records merge key-wise: benches with
    several tests update their own sections independently.
    """
    PERF_DIR.mkdir(parents=True, exist_ok=True)
    path = PERF_DIR / f"BENCH_{name}.json"
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(record)
    existing["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, fn):
    """pytest-benchmark pedantic single-shot (training is the benchmark)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
