"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure at CPU scale: corpora and
trained systems are cached per-process so the suite shares work, and every
bench prints the same rows its paper counterpart reports.  Absolute numbers
differ from the paper (simulated substrate, scaled model); the *shape* —
which system wins, how metrics move across conditions — is the target.

Protocol notes (documented in EXPERIMENTS.md):

* every system — GraphBinMatch included — picks its decision threshold on
  the validation split (§V-A allows this);
* training pairs are balanced, evaluation pairs negative-heavy (3:1), so
  the degenerate all-positive predictor's F1 floor sits at 0.4 instead of
  0.67 and weak systems are not compressed onto one number;
* GraphBinMatch trains with early stopping on validation F1.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Tuple

from repro.config import DataConfig, cpu_config, scaled
from repro.core.trainer import MatchTrainer
from repro.eval.experiments import (
    build_crosslang_dataset,
    build_single_language_dataset,
    build_source_source_dataset,
)

BENCH_SEED = 7

# Cross-language tables (III, VI, VII, VIII, Fig. 3) use the full-size
# corpus; the single-language grid (IV, V) trains ten models, so it runs on
# a smaller one — same-language matching is the easier task (paper F1 0.87
# vs 0.79) and keeps its shape at this scale.
CROSS_TASKS = 24
SINGLE_TASKS = 12
VARIANTS = 2
MAX_PAIRS = 4

# Compilation artifacts persist across bench *processes*: every bench (and
# every sweep condition) that rebuilds the same (task, variant, language,
# opt, compiler) coordinates loads it from here instead of re-running the
# pipeline.  Override the location with REPRO_ARTIFACT_CACHE; set it empty
# to disable caching entirely.
ARTIFACT_CACHE = os.environ.get(
    "REPRO_ARTIFACT_CACHE", str(Path(__file__).resolve().parent / ".artifact_cache")
)


def bench_model_config(**overrides):
    """The scaled GraphBinMatch config the benches train."""
    base = scaled(cpu_config(seed=BENCH_SEED), epochs=25, batch_pairs=8)
    return scaled(base, **overrides) if overrides else base


def bench_data_cfg(num_tasks: int = CROSS_TASKS, variants: int = VARIANTS, **kw) -> DataConfig:
    """The scaled corpus config (corpus builds hit the shared artifact cache)."""
    kw.setdefault("artifact_dir", ARTIFACT_CACHE or None)
    return DataConfig(
        num_tasks=num_tasks,
        variants=variants,
        seed=BENCH_SEED,
        max_pairs_per_task=MAX_PAIRS,
        **kw,
    )


@lru_cache(maxsize=None)
def crosslang_dataset(binary_langs: Tuple[str, ...], source_langs: Tuple[str, ...],
                      num_tasks: int = CROSS_TASKS, variants: int = VARIANTS):
    """Cached CLCDSA-style binary↔source dataset."""
    return build_crosslang_dataset(
        bench_data_cfg(num_tasks, variants), list(binary_langs), list(source_langs)
    )


@lru_cache(maxsize=None)
def source_source_dataset(left: Tuple[str, ...], right: Tuple[str, ...],
                          num_tasks: int = CROSS_TASKS, variants: int = VARIANTS):
    """Cached CLCDSA-style source↔source dataset."""
    return build_source_source_dataset(
        bench_data_cfg(num_tasks, variants), list(left), list(right)
    )


@lru_cache(maxsize=None)
def poj_dataset(opt_level: str = "O0", compiler: str = "clang",
                num_tasks: int = SINGLE_TASKS, variants: int = VARIANTS):
    """Cached POJ-104-style single-language dataset."""
    return build_single_language_dataset(
        bench_data_cfg(num_tasks, variants), opt_level=opt_level, compiler=compiler
    )


# --------------------------------------------------------------- training
_TRAINED = {}


def trained_gbm(dataset_key: str, dataset, **config_overrides) -> MatchTrainer:
    """Train (once per process) a GraphBinMatch model for a dataset.

    ``dataset_key`` names the dataset+config combination; benches that
    evaluate the same trained model (Table III forward, Table VII, Figure 3)
    share one training run through this cache.
    """
    cfg = bench_model_config(**config_overrides)
    key = (dataset_key, tuple(sorted(config_overrides.items())))
    if key not in _TRAINED:
        trainer = MatchTrainer(cfg)
        trainer.train(dataset, early_stopping=True)
        _TRAINED[key] = trainer
    return _TRAINED[key]


def run_once(benchmark, fn):
    """pytest-benchmark pedantic single-shot (training is the benchmark)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
