"""Figure 4 — false-negative case study: one task, wildly different graphs.

Paper: a matching Java/C++ pair whose IR graphs differ hugely in size
(Java 330 nodes / 660 edges vs C++ 65 nodes / 115 edges) because Java
lowers through runtime helpers and bounds checks while C++ stays lean.
This bench reproduces the asymmetry for every task and prints the most
extreme example.
"""

import numpy as np

from repro.graphs.programl import build_graph
from repro.ir.lowering import lower_program
from repro.lang.generator import SolutionGenerator
from repro.lang.tasks import TASK_REGISTRY
from repro.utils.tables import Table

from benchmarks.common import BENCH_SEED, run_once


def _run():
    gen = SolutionGenerator(seed=BENCH_SEED)
    rows = []
    for task in sorted(TASK_REGISTRY)[:12]:
        g = {}
        for lang in ("cpp", "java"):
            sf = gen.generate(task, 0, lang)
            graph = build_graph(lower_program(sf.program))
            g[lang] = (graph.num_nodes, graph.num_edges)
        rows.append((task, *g["java"], *g["cpp"]))
    return rows


def test_fig4_case_study(benchmark):
    rows = run_once(benchmark, _run)
    table = Table(
        "Figure 4: same-task Java vs C++ IR-graph sizes",
        ["Task", "Java nodes", "Java edges", "C++ nodes", "C++ edges", "node ratio"],
    )
    ratios = []
    for task, jn, je, cn, ce in rows:
        ratio = jn / cn
        ratios.append(ratio)
        table.add_row(task, jn, je, cn, ce, ratio)
    print()
    print(table.render())
    worst = max(ratios)
    print(f"\nlargest Java/C++ node ratio: {worst:.2f}x (paper's example: 330/65 = 5.1x)")
    # Java IR is systematically larger (bounds checks, runtime calls) even
    # though C++ template instantiation offsets part of the gap.
    assert np.mean(ratios) > 1.02
