"""Million-candidate retrieval shape: ANN + quantized mmap shards at scale.

Not a paper table: this bench backs the scalable index layer (PR 7).  The
paper's retrieval use case (§I — find the source for a binary fragment)
is a top-k query against a corpus that keeps growing; the exact path
scores every entry through the pair head and keeps the whole float32
matrix resident, both linear in corpus size.  The shapes asserted here
are the ones that justify the subsystem:

* **recall/speedup frontier** — on a synthetic clustered corpus
  (``CORPUS_SIZE`` entries, ≥ 50k at full scale), sweeping ``nprobe``
  traces a recall@10-vs-speedup frontier against the exact flat-float32
  path; the gate requires a point with recall@10 ≥ 0.95 at ≥ 10× speedup
  (≥ 2.5× in the reduced smoke run, where the corpus is too small for
  pruning to amortize its fixed costs);
* **bounded memory** — the int8 shards are memory-mapped and dequantized
  in bounded blocks: the instrumented peak of concurrently-resident
  dequantized bytes stays a small fraction of the flat float32 matrix,
  and (full scale) a child process serving the quantized index peaks at
  a lower RSS than one serving the float32 flat index.

Ground truth is tie-aware: a returned hit counts as correct when its
exact score reaches the 10th-best exact score minus a float32-jitter
epsilon, so ranking flips inside score ties do not read as recall loss.
Everything measured lands in ``benchmarks/perf/BENCH_index_scale.json``.
Set ``REPRO_BENCH_SMOKE=1`` for the reduced-size CI run (same gates,
smaller corpus and speedup floor).
"""

import multiprocessing
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.index import EmbeddingIndex, ShardedEmbeddingIndex, open_index
from repro.utils.tables import Table

from benchmarks.common import (
    BENCH_SEED,
    crosslang_dataset,
    run_once,
    trained_gbm,
    write_perf_record,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
# dim = 2 * hidden_dim; the full run uses a wider head so the flat matrix
# is big enough (64 MiB) for the memory gates to measure something real.
HIDDEN_DIM = 16 if SMOKE else 64
CORPUS_SIZE = 8192 if SMOKE else 65536
CELLS = 64 if SMOKE else 512
SHARD_SIZE = 2048 if SMOKE else 8192
NUM_QUERIES = 16
TOP_K = 10
NPROBES = (1, 2, 4, 8, 16)
RECALL_FLOOR = 0.95
# Pruning amortizes per-query/per-shard dispatch only once the corpus is
# large; the smoke corpus is 8× smaller, so its floor is proportionally lax.
SPEEDUP_FLOOR = 2.5 if SMOKE else 10.0
SCALE_MODEL = dict(epochs=2, hidden_dim=HIDDEN_DIM, embed_dim=16, num_layers=1)


def _synthetic_corpus(dim: int):
    """Clustered unit-scale embeddings: CELLS blobs, CORPUS_SIZE rows.

    Unit scale keeps the pair head's sigmoid off its saturated plateaus
    (saturation collapses scores into ties and recall would measure the
    tie-break, not the pruning); tight blobs give the coarse quantizer a
    recoverable cell structure, the regime ANN indexes are built for.
    """
    rng = np.random.default_rng(BENCH_SEED)
    centers = rng.standard_normal((CELLS, dim)).astype(np.float32)
    assign = np.arange(CORPUS_SIZE) % CELLS
    rows = centers[assign] + 0.05 * rng.standard_normal(
        (CORPUS_SIZE, dim)
    ).astype(np.float32)
    # Queries: corpus rows (spread across blobs) plus a small perturbation.
    picks = rng.choice(CORPUS_SIZE, size=NUM_QUERIES, replace=False)
    queries = rows[picks] + 0.01 * rng.standard_normal(
        (NUM_QUERIES, dim)
    ).astype(np.float32)
    return rows, queries


def _keys(n: int):
    return [f"{i:064x}" for i in range(n)]


def _vm_rss_bytes() -> int:
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return 0


def _rss_probe(index_path, checkpoint, queries_path, out):
    """Child body: open an index, run one query pass, report peak RSS.

    ``ru_maxrss`` is useless here: some kernels carry the parent's
    high-water mark across fork+exec, so both probes would report the
    bench process's own peak.  Sample ``VmRSS`` around the work instead —
    numpy releases the GIL inside the big matmuls, so the sampler thread
    observes the scoring-time footprint.
    """
    import threading

    from repro.core.trainer import MatchTrainer

    peak = [_vm_rss_bytes()]
    stop = threading.Event()

    def sample():
        while not stop.is_set():
            peak[0] = max(peak[0], _vm_rss_bytes())
            time.sleep(0.001)

    sampler = threading.Thread(target=sample, daemon=True)
    sampler.start()
    trainer = MatchTrainer.load(checkpoint)
    index = open_index(index_path, trainer)
    queries = np.load(queries_path)
    index.topk_batch(embeddings=queries, k=TOP_K)
    stop.set()
    sampler.join()
    out.put(max(peak[0], _vm_rss_bytes()))


def _child_rss(index_path, checkpoint, queries_path) -> int:
    ctx = multiprocessing.get_context("spawn")
    out = ctx.Queue()
    proc = ctx.Process(
        target=_rss_probe, args=(str(index_path), str(checkpoint), str(queries_path), out)
    )
    proc.start()
    rss = out.get(timeout=600)
    proc.join(timeout=60)
    return int(rss)


def _run():
    dataset, _ = crosslang_dataset(("c",), ("java",), num_tasks=12, variants=2)
    trainer = trained_gbm(f"index-scale-h{HIDDEN_DIM}", dataset, **SCALE_MODEL)
    dim = 2 * trainer.config.hidden_dim
    rows, queries = _synthetic_corpus(dim)
    flat_bytes = rows.nbytes

    mono = EmbeddingIndex(trainer)
    mono.add_precomputed(_keys(CORPUS_SIZE), rows)

    with tempfile.TemporaryDirectory(prefix="repro-bench-iscale-") as tmp:
        tmp = Path(tmp)
        t0 = time.perf_counter()
        ShardedEmbeddingIndex.from_index(mono, tmp / "flat", SHARD_SIZE)
        flat_build_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        ShardedEmbeddingIndex.from_index(
            mono,
            tmp / "quant",
            SHARD_SIZE,
            codec="int8",
            cells=CELLS,
            quantizer_seed=BENCH_SEED,
        )
        quant_build_s = time.perf_counter() - t0

        flat = ShardedEmbeddingIndex.open(tmp / "flat", trainer)
        quant = ShardedEmbeddingIndex.open(tmp / "quant", trainer)

        # Exact reference: the flat float32 matrix path (bit parity with
        # the monolithic index).  Warm once — shard loads and the gather
        # cache are one-time costs every serving process pays at startup.
        flat.topk_batch(embeddings=queries[:1], k=TOP_K)
        t0 = time.perf_counter()
        flat.topk_batch(embeddings=queries, k=TOP_K)
        exact_s = time.perf_counter() - t0

        # Streamed exact over the quantized mmap (recorded, not gated on
        # speed): resident dequantized bytes are the memory story.
        quant.scores_batch(embeddings=queries[:1])  # warm mmaps
        t0 = time.perf_counter()
        exact_scores = quant.scores_batch(embeddings=queries)
        stream_exact_s = time.perf_counter() - t0
        stream_peak = quant.last_peak_dequant_bytes

        # Tie-aware ground truth on the same stored rows the ANN path
        # rescans, so recall isolates the pruning (not int8 noise, not
        # last-bit jitter between scoring-batch shapes).
        kth = -np.partition(-exact_scores, TOP_K - 1, axis=1)[:, TOP_K - 1]
        truth = exact_scores >= (kth[:, None] - 1e-6)

        frontier = []
        ann_peak = 0
        for nprobe in NPROBES:
            quant.topk_batch(
                embeddings=queries[:1], k=TOP_K, mode="ann", nprobe=nprobe
            )
            t0 = time.perf_counter()
            hit_lists = quant.topk_batch(
                embeddings=queries, k=TOP_K, mode="ann", nprobe=nprobe
            )
            ann_s = time.perf_counter() - t0
            ann_peak = max(ann_peak, quant.last_peak_dequant_bytes)
            correct = sum(
                int(truth[qi, hit.index])
                for qi, hits in enumerate(hit_lists)
                for hit in hits
            )
            frontier.append(
                {
                    "nprobe": nprobe,
                    "recall_at_10": correct / (NUM_QUERIES * TOP_K),
                    "ann_s": ann_s,
                    "speedup_vs_exact": exact_s / ann_s,
                }
            )

        rss = {}
        if not SMOKE:
            checkpoint = tmp / "model.npz"
            trainer.save(checkpoint)
            queries_path = tmp / "queries.npy"
            np.save(queries_path, queries)
            rss = {
                "flat_rss_bytes": _child_rss(tmp / "flat", checkpoint, queries_path),
                "quant_rss_bytes": _child_rss(tmp / "quant", checkpoint, queries_path),
            }

    return {
        "dim": dim,
        "flat_bytes": flat_bytes,
        "flat_build_s": flat_build_s,
        "quant_build_s": quant_build_s,
        "exact_s": exact_s,
        "stream_exact_s": stream_exact_s,
        "stream_peak_dequant_bytes": stream_peak,
        "ann_peak_dequant_bytes": ann_peak,
        "frontier": frontier,
        "rss": rss,
    }


def test_index_scale_frontier(benchmark):
    r = run_once(benchmark, _run)
    table = Table(
        f"ANN frontier: {CORPUS_SIZE} entries, dim {r['dim']}, "
        f"{CELLS} cells, {NUM_QUERIES} queries",
        ["nprobe", "Recall@10", "ANN s", "Speedup"],
    )
    for point in r["frontier"]:
        table.add_row(
            point["nprobe"],
            round(point["recall_at_10"], 3),
            round(point["ann_s"], 3),
            round(point["speedup_vs_exact"], 1),
        )
    print()
    print(table.render())
    print(
        f"exact {r['exact_s']:.3f}s flat / {r['stream_exact_s']:.3f}s streamed; "
        f"peak dequant {r['stream_peak_dequant_bytes'] / 1024:.0f} KiB vs "
        f"{r['flat_bytes'] / 1024:.0f} KiB flat"
    )
    if r["rss"]:
        print(
            f"child RSS: flat {r['rss']['flat_rss_bytes'] >> 20} MiB, "
            f"quantized {r['rss']['quant_rss_bytes'] >> 20} MiB"
        )

    # The frontier gate: some probe count reaches the recall floor while
    # still clearing the speedup floor.
    viable = [
        p
        for p in r["frontier"]
        if p["recall_at_10"] >= RECALL_FLOOR
        and p["speedup_vs_exact"] >= SPEEDUP_FLOOR
    ]
    assert viable, (
        f"no nprobe reaches recall@10 >= {RECALL_FLOOR} at >= "
        f"{SPEEDUP_FLOOR}x: {r['frontier']}"
    )
    # More probes must never cost recall: the probe sets are nested.
    recalls = [p["recall_at_10"] for p in r["frontier"]]
    assert recalls == sorted(recalls), recalls

    # Memory gates: block streaming keeps the dequantized working set a
    # small fraction of the flat matrix, on both exact and ANN paths.
    assert 0 < r["stream_peak_dequant_bytes"] <= r["flat_bytes"] // 2
    assert 0 < r["ann_peak_dequant_bytes"] <= r["flat_bytes"] // 2
    if r["rss"]:
        assert r["rss"]["quant_rss_bytes"] < r["rss"]["flat_rss_bytes"]

    write_perf_record(
        "index_scale",
        {
            "smoke": SMOKE,
            "corpus_size": CORPUS_SIZE,
            "dim": r["dim"],
            "cells": CELLS,
            "shard_size": SHARD_SIZE,
            "num_queries": NUM_QUERIES,
            "top_k": TOP_K,
            "flat_bytes": r["flat_bytes"],
            "flat_build_s": r["flat_build_s"],
            "quant_build_s": r["quant_build_s"],
            "exact_s": r["exact_s"],
            "stream_exact_s": r["stream_exact_s"],
            "stream_peak_dequant_bytes": r["stream_peak_dequant_bytes"],
            "ann_peak_dequant_bytes": r["ann_peak_dequant_bytes"],
            "frontier": r["frontier"],
            "recall_floor": RECALL_FLOOR,
            "speedup_floor": SPEEDUP_FLOOR,
            **r["rss"],
        },
    )
