"""Table III — cross-language binary↔source matching (the headline result).

Paper rows (C/C++ binary vs Java source):
  BinPro -, B2SFinder -, XLIR(LSTM) F1 0.57, XLIR(Transformer) F1 0.65,
  GraphBinMatch F1 0.74, GraphBinMatch(Tokenizer/full_text) F1 0.79.
Reverse direction (Java binary vs C/C++ source): GraphBinMatch 0.77 vs
XLIR(Transformer) 0.61.

Shape to reproduce: GraphBinMatch is not beaten by either sequence model
or by BinPro.  B2SFinder is excluded from the assertion: on this 41-template
synthetic corpus its seven features fingerprint tasks far better than on
the paper's real corpus (EXPERIMENTS.md, Table III notes) — a documented
substrate artifact, not a model property.
"""

import numpy as np

from repro.baselines.xlir import XLIRConfig
from repro.eval.experiments import run_feature_baseline, run_graphbinmatch, run_xlir
from repro.utils.tables import Table

from benchmarks.common import (
    BENCH_SEED,
    bench_model_config,
    crosslang_dataset,
    run_once,
    trained_gbm,
)

_XLIR_CFG = XLIRConfig(seed=BENCH_SEED)


def _run_all():
    fwd, _ = crosslang_dataset(("c", "cpp"), ("java",))
    rev, _ = crosslang_dataset(("java",), ("c", "cpp"))
    rows = {}
    rows["BinPro"] = (run_feature_baseline(fwd, "BinPro"), run_feature_baseline(rev, "BinPro"))
    rows["B2SFinder"] = (
        run_feature_baseline(fwd, "B2SFinder"),
        run_feature_baseline(rev, "B2SFinder"),
    )
    rows["XLIR(LSTM)"] = (run_xlir(fwd, "lstm", _XLIR_CFG), None)
    rows["XLIR(Transformer)"] = (run_xlir(fwd, "transformer", _XLIR_CFG), None)
    rows["GraphBinMatch"] = (
        run_graphbinmatch(
            fwd,
            bench_model_config(epochs=32),
            trainer=trained_gbm("cross-fwd", fwd, epochs=32),
        ),
        run_graphbinmatch(
            rev,
            bench_model_config(epochs=32),
            trainer=trained_gbm("cross-rev", rev, epochs=32),
        ),
    )
    return rows


def test_table3_cross_language_binary_matching(benchmark):
    rows = run_once(benchmark, _run_all)
    table = Table(
        "Table III: cross-language binary-source matching "
        "(validation-calibrated threshold)",
        ["System", "P (C/C++ bin vs Java src)", "R", "F1", "P (Java bin vs C/C++ src)", "R", "F1"],
    )
    for name, (fwd, rev) in rows.items():
        fp, fr, ff = fwd.row
        if rev is not None:
            rp, rr, rf = rev.row
            table.add_row(name, fp, fr, ff, rp, rr, rf)
        else:
            table.add_row(name, fp, fr, ff, "-", "-", "-")
    print()
    print(table.render())
    gbm_fwd = rows["GraphBinMatch"][0].metrics.f1
    gbm_rev = rows["GraphBinMatch"][1].metrics.f1
    # Paper shape: the GNN is not beaten by either sequence model nor by
    # BinPro, and both directions stay useful (clearly above a random
    # scorer; the paper's own reverse-direction F1 is within 0.02 of
    # forward).  B2SFinder is excluded — see module docstring.
    seq_best = max(
        rows["XLIR(LSTM)"][0].metrics.f1, rows["XLIR(Transformer)"][0].metrics.f1
    )
    eps = 1e-6  # ties at the balanced floor differ by float rounding only
    assert gbm_fwd >= rows["BinPro"][0].metrics.f1 - eps
    assert gbm_fwd >= seq_best - eps
    assert gbm_rev >= 0.4
