"""Dataflow workload — edge determinism, verifier sweep, retrieval ablation.

Not a paper table: this bench gates the static-analysis subsystem
(``repro.ir.analysis`` + the ``dataflow``/``callsummary`` graph relations,
PR 8).  Three contracts:

* **determinism** — the analysis-derived edges are *bit-identical across
  fresh processes*: two subprocesses each lower + optimize + graph the
  same task slice with ``dataflow=True`` and hash every
  dataflow/callsummary edge array; the digests must match (the artifact
  store's content-addressing and the cross-process corpus builders depend
  on it);
* **verifier sweep** — with ``verify_passes`` on, the full staged pipeline
  (lower → every optimization pass → codegen → decompile, plus a
  transform-chain subset) runs a corpus slice end to end with *zero*
  verifier violations, and the final modules on both sides analyze clean
  (:func:`repro.ir.analysis.analyze_module` returns no error findings);
* **ablation** — a Table-8-style feature ablation under the PR 5
  transform sweep: one model trained on base-relation graphs, one on
  dataflow-extended graphs, both swept through the robustness harness
  (regrename / blockreorder); the dataflow-on system must not regress
  clean retrieval MRR versus dataflow-off.

Digests, violation counts and both robustness matrices merge into
``benchmarks/perf/BENCH_dataflow.json``.  Set ``REPRO_BENCH_SMOKE=1``
(scripts/verify.sh does) for a reduced sweep with the same gates.
"""

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.artifacts import ArtifactStore
from repro.config import EXTENDED_RELATIONS, DataConfig
from repro.eval.experiments import build_crosslang_dataset
from repro.eval.robustness import RobustnessHarness
from repro.ir.analysis import SEVERITY_ERROR, analyze_module
from repro.lang.generator import SolutionGenerator
from repro.lang.tasks import TASK_REGISTRY
from repro.pipeline import CompilationPipeline
from repro.utils.tables import Table

from benchmarks.common import (
    ARTIFACT_CACHE,
    BENCH_SEED,
    run_once,
    trained_gbm,
    write_perf_record,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

LANGS = ("c", "cpp", "java")
DET_TASKS = 4 if SMOKE else 8
SWEEP_TASKS = 6 if SMOKE else 14
SWEEP_LEVELS = ("O0", "O2", "Oz") if SMOKE else ("O0", "O1", "O2", "O3", "Oz")
SWEEP_CHAINS = ("regrename", "deadcode+regrename")
ABLATION_CHAINS = ("regrename", "blockreorder")
INTENSITIES = (1.0,) if SMOKE else (0.5, 1.0)
TRAIN_TASKS = 6 if SMOKE else 8
CORPUS_TASKS = 10 if SMOKE else 14
MAX_QUERIES = 8 if SMOKE else 12
# The ablation compares graph schemas through *model quality*, so it keeps
# the full cpu_config architecture (hidden 48, 3 layers, interaction pair
# head) — a serving-scale 1-layer/16-dim model is too weak to exploit the
# extra relations and inverts the comparison.  Both systems share the
# config exactly; only `relations` (and the corpus schema) differ.
ABLATION_MODEL = dict(epochs=10)


def _bench_tasks(n: int):
    return sorted(TASK_REGISTRY)[:n]


# ---------------------------------------------------------- determinism
# Runs in a *fresh interpreter*: same-process determinism would not catch
# iteration orders that leak id()/hash randomization into the edge arrays.
_EDGE_HASH_SCRIPT = """\
import hashlib
from repro.graphs.programl import CALLSUMMARY, DATAFLOW, build_graph
from repro.ir.lowering import lower_program
from repro.ir.passes.pipeline import optimize
from repro.lang.generator import SolutionGenerator

gen = SolutionGenerator(seed={seed}, independent=True)
h = hashlib.sha256()
for task in {tasks!r}:
    for lang in {langs!r}:
        sf = gen.generate(task, 0, lang)
        module = lower_program(sf.program, name=sf.identifier)
        optimize(module, "O2")
        g = build_graph(module, name=sf.identifier, dataflow=True)
        for rel in (DATAFLOW, CALLSUMMARY):
            h.update(rel.encode())
            h.update(g.edges[rel].tobytes())
            h.update(g.positions[rel].tobytes())
        h.update("\\x00".join(g.node_texts).encode())
print(h.hexdigest())
"""


def _edge_digest() -> str:
    """Analysis-edge digest for the probe slice, from a fresh process."""
    script = _EDGE_HASH_SCRIPT.format(
        seed=BENCH_SEED, tasks=_bench_tasks(DET_TASKS), langs=LANGS
    )
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    env["PYTHONHASHSEED"] = "random"  # determinism must not lean on hashing
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, cwd=root, check=True,
    )
    return proc.stdout.strip()


# ------------------------------------------------------- verifier sweep
def _verifier_sweep() -> dict:
    """Compile a corpus slice with verify-after-every-pass enabled.

    ``verify_passes=True`` re-verifies the module after every optimization
    pass and every transform application — any violation raises out of
    ``compile`` and fails the bench.  The final modules on both sides are
    additionally analyzed for error-severity findings.
    """
    pipeline = CompilationPipeline(dataflow_edges=True, verify_passes=True)
    gen = SolutionGenerator(seed=BENCH_SEED, independent=True)
    modules = 0
    findings = 0
    for task in _bench_tasks(SWEEP_TASKS):
        for lang in LANGS:
            for opt in SWEEP_LEVELS:
                sf = gen.generate(task, 0, lang)
                result = pipeline.compile(
                    sf.text, lang, name=sf.identifier,
                    opt_level=opt, program=sf.program,
                )
                modules += 2  # source-side + decompiled-side
                for module in (result.source_module, result.decompiled_module):
                    findings += sum(
                        1 for f in analyze_module(module)
                        if f.severity == SEVERITY_ERROR
                    )
    # Transform chains exercise verify-after-transform on a subset.
    from repro.eval.robustness import chain_specs

    transformed = 0
    for task in _bench_tasks(2):
        sf = gen.generate(task, 0, "c")
        for chain in SWEEP_CHAINS:
            pipeline.compile(
                sf.text, "c", name=sf.identifier, opt_level="O1",
                program=sf.program,
                transforms=chain_specs(chain, 1.0, BENCH_SEED),
            )
            transformed += 1
    return {"modules": modules, "transformed": transformed, "error_findings": findings}


# ------------------------------------------------------------- ablation
def _ablation(tmp: Path) -> dict:
    """Robustness sweep with and without the analysis-derived relations."""
    rows = {}
    for mode, dataflow in (("off", False), ("on", True)):
        train_cfg = DataConfig(
            num_tasks=TRAIN_TASKS, variants=2, seed=BENCH_SEED,
            max_pairs_per_task=4, artifact_dir=ARTIFACT_CACHE or None,
            dataflow_edges=dataflow,
        )
        dataset, _ = build_crosslang_dataset(train_cfg, ["c"], ["java"])
        overrides = dict(ABLATION_MODEL)
        if dataflow:
            overrides["relations"] = EXTENDED_RELATIONS
        trainer = trained_gbm(f"dataflow-{mode}", dataset, **overrides)
        harness = RobustnessHarness(
            trainer,
            DataConfig(
                num_tasks=CORPUS_TASKS, variants=2, seed=BENCH_SEED,
                max_pairs_per_task=4, dataflow_edges=dataflow,
            ),
            source_languages=["java"],
            query_language="c",
            store=ArtifactStore(tmp / f"store-{mode}"),
            index_root=tmp / f"index-{mode}",
            transform_seed=BENCH_SEED,
            max_queries=MAX_QUERIES,
        )
        report = harness.evaluate(ABLATION_CHAINS, INTENSITIES)
        rows[mode] = {
            "clean": report.clean.to_dict(),
            "matrix": report.matrix(),
            "num_queries": report.num_queries,
            "num_candidates": report.num_candidates,
        }
    return rows


def _run():
    t0 = time.perf_counter()
    first, second = _edge_digest(), _edge_digest()
    determinism_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sweep = _verifier_sweep()
    sweep_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-bench-dataflow-") as tmp:
        ablation = _ablation(Path(tmp))
    ablation_s = time.perf_counter() - t0

    return {
        "digest_first": first,
        "digest_second": second,
        "sweep": sweep,
        "ablation": ablation,
        "determinism_s": determinism_s,
        "sweep_s": sweep_s,
        "ablation_s": ablation_s,
    }


def test_dataflow_workload(benchmark):
    r = run_once(benchmark, _run)

    table = Table(
        "Dataflow subsystem gates",
        ["Gate", "Wall s", "Outcome"],
    )
    table.add_row(
        "edge determinism (2 processes)", round(r["determinism_s"], 2),
        r["digest_first"][:16],
    )
    table.add_row(
        f"verifier sweep ({r['sweep']['modules']} modules, "
        f"{r['sweep']['transformed']} transformed)",
        round(r["sweep_s"], 2),
        f"{r['sweep']['error_findings']} errors",
    )
    mrr_on = r["ablation"]["on"]["clean"]["mrr"]
    mrr_off = r["ablation"]["off"]["clean"]["mrr"]
    table.add_row(
        "ablation clean MRR on/off", round(r["ablation_s"], 2),
        f"{mrr_on:.3f} vs {mrr_off:.3f}",
    )
    print()
    print(table.render())
    mrr_table = Table(
        "Robustness under transforms (MRR)",
        ["Chain", "Intensity", "dataflow off", "dataflow on"],
    )
    for chain in ABLATION_CHAINS:
        for i in INTENSITIES:
            mrr_table.add_row(
                chain, f"{i:g}",
                round(r["ablation"]["off"]["matrix"][chain][f"{i:g}"]["mrr"], 3),
                round(r["ablation"]["on"]["matrix"][chain][f"{i:g}"]["mrr"], 3),
            )
    print(mrr_table.render())

    # Gate 1: the analysis-derived edges are bit-identical across fresh
    # interpreter processes (hash randomization explicitly enabled).
    assert r["digest_first"] == r["digest_second"], (
        f"dataflow/callsummary edges differ across processes: "
        f"{r['digest_first']} != {r['digest_second']}"
    )

    # Gate 2: verify-after-every-pass raised nothing (or compile() would
    # have thrown) and the final modules carry zero error findings.
    assert r["sweep"]["error_findings"] == 0, (
        f"{r['sweep']['error_findings']} error findings on final modules"
    )

    # Gate 3: emitting the analysis relations must not regress clean
    # retrieval versus the base-relation system.
    assert mrr_on >= mrr_off, (
        f"dataflow-on clean MRR {mrr_on:.4f} regressed below "
        f"dataflow-off {mrr_off:.4f}"
    )

    write_perf_record(
        "dataflow",
        {
            "edge_digest": r["digest_first"],
            "determinism_s": r["determinism_s"],
            "verifier_sweep": r["sweep"],
            "verifier_sweep_s": r["sweep_s"],
            "ablation": r["ablation"],
            "ablation_s": r["ablation_s"],
            "smoke": SMOKE,
        },
    )
