"""Table V — robustness across optimization levels and compilers (RQ2/RQ3).

Paper: GraphBinMatch F1 stays in 0.83–0.88 for clang-10 and gcc-9.4 across
O0/O1/O2/O3/Oz, decaying mildly at higher -O; gcc-decompiled IR is ~70%
larger than clang's.  Shape: consistent scores across the grid, a mild
high-O penalty, and the gcc size blow-up.
"""

import numpy as np

from repro.utils.tables import Table

from benchmarks.common import gbm_grid, poj_dataset, run_once

LEVELS = ("O0", "O1", "O2", "O3", "Oz")


def _run():
    # The ten (compiler, level) trainings are independent, so they go
    # through the experiment runner's grid: warm runs load from the model
    # store, cold runs fan out over worker processes, and either way the
    # rows are identical to training serially in-process.
    conds = [(compiler, level) for compiler in ("clang", "gcc") for level in LEVELS]
    jobs = [
        (f"poj-{level}-{compiler}", poj_dataset(level, compiler)[0], {"epochs": 14})
        for compiler, level in conds
    ]
    return dict(zip(conds, gbm_grid(jobs)))


def _decompiled_sizes():
    sizes = {}
    for compiler in ("clang", "gcc"):
        _, builder = poj_dataset("O0", compiler, num_tasks=8, variants=2)
    # sizes measured separately below via fresh pairs
    from repro.data.corpus import CorpusBuilder

    from benchmarks.common import bench_data_cfg

    for compiler in ("clang", "gcc"):
        b = CorpusBuilder(bench_data_cfg(num_tasks=6, variants=2))
        samples = b.build(["cpp"], opt_level="O0", compiler=compiler)
        sizes[compiler] = float(np.mean([s.decompiled_module.size() for s in samples]))
    return sizes


def test_table5_optimization_levels(benchmark):
    grid = run_once(benchmark, _run)
    table = Table(
        "Table V: same-language matching across optimization levels",
        ["Level", "clang P", "clang R", "clang F1", "gcc P", "gcc R", "gcc F1"],
    )
    for level in LEVELS:
        c = grid[("clang", level)]
        g = grid[("gcc", level)]
        table.add_row(level, *c.row, *g.row)
    print()
    print(table.render())
    sizes = _decompiled_sizes()
    ratio = sizes["gcc"] / sizes["clang"]
    print(
        f"\nmean decompiled-IR size: clang={sizes['clang']:.0f} instrs, "
        f"gcc={sizes['gcc']:.0f} instrs (gcc/clang = {ratio:.2f}x; paper ~1.7x)"
    )
    assert ratio > 1.2  # the paper's gcc blow-up reproduces
    f1s = [grid[(c, l)].metrics.f1 for c in ("clang", "gcc") for l in LEVELS]
    assert max(f1s) - min(f1s) < 0.6  # no catastrophic level-dependence
