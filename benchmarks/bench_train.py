"""Training throughput — model cache, parallel grid, fused optimizer (north star).

Training is the dominant wall-clock cost of the bench suite now that
corpus builds are warm-cacheable (PR 2) and retrieval is serve-fast
(PR 3): every table trains one or more GraphBinMatch instances, and
before the experiment runner every bench *process* retrained them all.
This bench gates the three layers of the training-throughput subsystem:

* **experiment cache** — a warm :func:`run_experiment` (fresh
  process-equivalent store handle) loads the finished checkpoint ≥5×
  faster than the cold training run, with *identical* (precision,
  recall, f1) rows, because a reloaded trainer is fingerprint-equal;
* **parallel grid** — :func:`run_grid` over persistent warm-pool workers
  produces bit-identical models to the serial path (workers only fill the
  store) and actually pays: ≥2× over serial where the machine has the
  cores (≥1.5× at smoke scale), bounded parallel overhead (≤1.25×
  serial) on a single-core box where a literal speedup is physically
  impossible — the recorded ``cores``/``gate`` fields say which gate ran;
* **warm pool dispatch** — re-dispatching a batch to resident
  :class:`WarmPool` workers beats standing up a fresh spawn
  ``multiprocessing.Pool`` per batch ≥2× (this is the cost the warm pool
  exists to delete, and it is core-count-independent);
* **fused optimizer** — the :class:`ParameterArena`-backed Adam + clip
  matches the per-parameter reference loop's loss curve within 1e-5
  (they are bit-identical by construction), the train-only epoch time
  (``epoch_seconds − epoch_valid_seconds``, min over epochs: every epoch
  is identical work, so min is the noise-robust estimator) does not
  regress, and the optimizer step itself is ≥1.2× faster.

Each test merges its measurements into ``benchmarks/perf/BENCH_train.json``
so the perf trajectory is tracked run over run.  Set ``REPRO_BENCH_SMOKE=1``
(scripts/verify.sh does) for a reduced-size run with the same gates.
"""

import multiprocessing
import os
import time

import numpy as np

from repro.core.trainer import MatchTrainer
from repro.eval.experiments import run_graphbinmatch
from repro.exec import ExperimentSpec, ModelStore, WarmPool, run_experiment, run_grid
from repro.exec.pool import ping
from repro.nn.functional import clip_grad_norm
from repro.nn.module import Parameter
from repro.nn.optim import Adam
from repro.utils.tables import Table

from benchmarks.common import (
    bench_model_config,
    crosslang_dataset,
    run_once,
    write_perf_record,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
TASKS = 8 if SMOKE else 12
EPOCHS = 6 if SMOKE else 12
GRID_EPOCHS = 4 if SMOKE else 6
GRID_SEEDS = (11, 12) if SMOKE else (11, 12, 13)


def _dataset():
    return crosslang_dataset(("c",), ("java",), num_tasks=TASKS)[0]


def test_experiment_cache_cold_vs_warm(benchmark, tmp_path):
    ds = _dataset()
    cfg = bench_model_config(epochs=EPOCHS)
    spec = ExperimentSpec("bench-train-cache", cfg)

    cold_store = ModelStore(tmp_path / "models")
    t0 = time.perf_counter()
    cold = run_once(benchmark, lambda: run_experiment(spec, ds, store=cold_store))
    t_cold = time.perf_counter() - t0
    assert not cold.from_cache

    # Fresh store handle = what a new bench process sees.
    warm_store = ModelStore(tmp_path / "models")
    t0 = time.perf_counter()
    warm = run_experiment(spec, ds, store=warm_store)
    t_warm = time.perf_counter() - t0
    assert warm.from_cache
    assert warm_store.hits == 1

    cold_row = run_graphbinmatch(ds, cfg, trainer=cold.trainer).row
    warm_row = run_graphbinmatch(ds, cfg, trainer=warm.trainer).row

    speedup = t_cold / t_warm
    table = Table(
        "Experiment runner: cold train vs warm model-store load",
        ["Mode", "Wall clock (s)", "P", "R", "F1", "vs cold"],
    )
    table.add_row("cold (train + put)", f"{t_cold:.3f}", *cold_row, "1.0x")
    table.add_row("warm (store hit)", f"{t_warm:.3f}", *warm_row, f"{speedup:.1f}x")
    print()
    print(table.render())

    write_perf_record(
        "train",
        {
            "experiment_cache": {
                "cold_s": round(t_cold, 4),
                "warm_s": round(t_warm, 4),
                "speedup": round(speedup, 2),
                "epochs": EPOCHS,
                "smoke": SMOKE,
            }
        },
    )
    # Identical rows: the reloaded trainer is fingerprint-equal to the one
    # that trained, so every downstream metric matches exactly.
    assert warm_row == cold_row
    assert speedup >= 5.0, f"warm experiment run only {speedup:.1f}x faster"


def test_run_grid_parallel_identical_to_serial(tmp_path):
    ds = _dataset()
    jobs = [
        (
            ExperimentSpec(f"bench-grid-{seed}", bench_model_config(epochs=GRID_EPOCHS, seed=seed)),
            ds,
        )
        for seed in GRID_SEEDS
    ]

    t0 = time.perf_counter()
    serial = run_grid(jobs, store=ModelStore(tmp_path / "serial"))
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_grid(jobs, store=ModelStore(tmp_path / "parallel"), workers=2)
    t_parallel = time.perf_counter() - t0

    for s_run, p_run in zip(serial, parallel):
        s_state = s_run.trainer.model.state_dict()
        p_state = p_run.trainer.model.state_dict()
        assert set(s_state) == set(p_state)
        for key in s_state:
            assert np.array_equal(s_state[key], p_state[key]), f"weights differ: {key}"
        s_row = run_graphbinmatch(ds, s_run.spec.config, trainer=s_run.trainer).row
        p_row = run_graphbinmatch(ds, p_run.spec.config, trainer=p_run.trainer).row
        assert s_row == p_row

    speedup = t_serial / t_parallel
    cores = os.cpu_count() or 1
    # Two workers cannot beat one on one core — CPU-bound training jobs
    # just timeshare it.  Gate the speedup where the silicon exists, and
    # gate the *overhead* (dispatch, dataset sharing, store commits) where
    # it does not; the recorded fields say which gate this run took.
    if cores >= 2:
        target = 1.5 if SMOKE else 2.0
        gate = f"speedup>={target}"
        ok = speedup >= target
        detail = f"parallel only {speedup:.2f}x serial on {cores} cores"
    else:
        # Two CPU-bound trainings timesharing one core also pay context
        # switches and cache pressure on top of pool dispatch, hence the
        # headroom over a pure-overhead bound.
        gate = "overhead<=1.35x"
        ok = t_parallel <= t_serial * 1.35
        detail = (
            f"pool overhead too high on 1 core: parallel {t_parallel:.2f}s "
            f"vs serial {t_serial:.2f}s"
        )
    print(
        f"\ngrid of {len(jobs)}: serial {t_serial:.2f}s, "
        f"parallel x2 {t_parallel:.2f}s ({speedup:.1f}x) on {cores} core(s), "
        f"gate [{gate}], models bit-identical"
    )
    write_perf_record(
        "train",
        {
            "grid": {
                "jobs": len(jobs),
                "serial_s": round(t_serial, 3),
                "parallel_s": round(t_parallel, 3),
                "speedup": round(speedup, 2),
                "cores": cores,
                "gate": gate,
                "smoke": SMOKE,
            }
        },
    )
    assert ok, detail


def test_warm_pool_amortizes_dispatch(tmp_path):
    """Warm re-dispatch vs a fresh spawn pool per batch (the old runner).

    The cost the warm pool deletes is per-batch worker startup: process
    spawn + interpreter boot + ``repro``/NumPy import.  That cost is
    per-worker wall time, not parallel compute, so this gate holds on any
    core count — and under spawn it is brutal (seconds per batch).
    """
    workers, batches = 2, 3
    payload = [(i,) for i in range(8)]
    values = [v for (v,) in payload]

    with WarmPool(workers, start_method="spawn") as pool:
        assert pool.run(ping, payload) == values  # pay the one-time warmup
        t0 = time.perf_counter()
        for _ in range(batches):
            assert pool.run(ping, payload) == values
        t_warm = time.perf_counter() - t0

    ctx = multiprocessing.get_context("spawn")
    t0 = time.perf_counter()
    for _ in range(batches):
        with ctx.Pool(workers) as fresh:
            assert fresh.map(ping, values) == values
    t_fresh = time.perf_counter() - t0

    speedup = t_fresh / t_warm
    print(
        f"\n{batches} batches x {len(payload)} jobs on {workers} spawn workers: "
        f"fresh Pool {t_fresh:.2f}s, warm pool {t_warm:.3f}s ({speedup:.0f}x)"
    )
    write_perf_record(
        "train",
        {
            "pool_dispatch": {
                "batches": batches,
                "jobs_per_batch": len(payload),
                "workers": workers,
                "fresh_s": round(t_fresh, 3),
                "warm_s": round(t_warm, 4),
                "speedup": round(speedup, 1),
                "smoke": SMOKE,
            }
        },
    )
    assert speedup >= 2.0, f"warm dispatch only {speedup:.1f}x a fresh spawn pool"


def _optimizer_step_time(params, grads, fused: bool, iters: int) -> float:
    """Best-of-3 wall clock for `iters` (clip + step) rounds, one optimizer."""
    opt = Adam(params, lr=1e-3, fused=fused)
    work = [np.zeros_like(g) for g in grads]
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(iters):
            for p, g_src, g_work in zip(params, grads, work):
                np.copyto(g_work, g_src)
                p.grad = g_work
            if fused:
                opt.clip_grad_norm(5.0)
            else:
                clip_grad_norm(params, 5.0)
            opt.step()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fused_optimizer_parity_and_speed(benchmark):
    ds = _dataset()
    cfg = bench_model_config(epochs=EPOCHS)

    t0 = time.perf_counter()
    ref_trainer = MatchTrainer(cfg)
    ref_report = run_once(
        benchmark,
        lambda: ref_trainer.train(ds, early_stopping=True, fused_optimizer=False),
    )
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused_trainer = MatchTrainer(cfg)
    fused_report = fused_trainer.train(ds, early_stopping=True, fused_optimizer=True)
    t_fused = time.perf_counter() - t0

    curve_diff = float(
        np.max(
            np.abs(
                np.asarray(ref_report.epoch_losses)
                - np.asarray(fused_report.epoch_losses)
            )
        )
    )

    def min_train_epoch(report):
        """Train-only epoch floor: total minus the validation pass.

        Early-stopping validation rides inside ``epoch_seconds`` and its
        cost varies run to run; subtracting ``epoch_valid_seconds`` and
        taking the min over epochs (every epoch is identical work)
        measures the thing the fused path actually changes.
        """
        return min(
            t - v for t, v in zip(report.epoch_seconds, report.epoch_valid_seconds)
        )

    ref_epoch = min_train_epoch(ref_report)
    fused_epoch = min_train_epoch(fused_report)

    # Step-level microbench on the real model's parameter set: the fused
    # arena replaces ~10 small NumPy calls per parameter with ~10 calls
    # total, which is where the optimizer's share of a step goes.
    params = fused_trainer.model.parameters()
    rng = np.random.default_rng(0)
    grads = [rng.standard_normal(p.data.shape).astype(np.float32) for p in params]
    iters = 20 if SMOKE else 50
    ref_params = [Parameter(p.data.copy()) for p in params]
    fused_params = [Parameter(p.data.copy()) for p in params]
    t_step_ref = _optimizer_step_time(ref_params, grads, fused=False, iters=iters)
    t_step_fused = _optimizer_step_time(fused_params, grads, fused=True, iters=iters)
    step_speedup = t_step_ref / t_step_fused

    table = Table(
        "Fused optimizer arena vs per-parameter reference loop",
        ["Path", "Epoch train-only min (s)", "Step bench (s)", "Final loss"],
    )
    table.add_row(
        "reference loop", f"{ref_epoch:.3f}", f"{t_step_ref:.3f}",
        f"{ref_report.epoch_losses[-1]:.6f}",
    )
    table.add_row(
        "fused arena", f"{fused_epoch:.3f}", f"{t_step_fused:.3f}",
        f"{fused_report.epoch_losses[-1]:.6f}",
    )
    print()
    print(table.render())
    print(
        f"loss-curve max |diff| = {curve_diff:.2e}; optimizer step {step_speedup:.1f}x; "
        f"epoch {ref_epoch / fused_epoch:.2f}x; "
        f"train wall clock {t_ref:.2f}s -> {t_fused:.2f}s"
    )

    write_perf_record(
        "train",
        {
            "fused_optimizer": {
                "ref_epoch_s": round(ref_epoch, 4),
                "fused_epoch_s": round(fused_epoch, 4),
                "epoch_ratio": round(ref_epoch / fused_epoch, 3),
                "step_speedup": round(step_speedup, 2),
                "curve_max_diff": curve_diff,
                "smoke": SMOKE,
            }
        },
    )
    assert curve_diff <= 1e-5, f"fused loss curve diverged by {curve_diff:.2e}"
    # Backward writes gradients straight into the arena, so a fused epoch
    # does strictly less copying than the reference loop: the train-only
    # epoch floor must not regress, and the optimizer step itself carries
    # the ≥1.2× target.
    assert fused_epoch <= ref_epoch, (
        f"fused epochs regressed: {fused_epoch:.3f}s vs {ref_epoch:.3f}s "
        "(train-only min over epochs)"
    )
    assert step_speedup >= 1.2, f"fused optimizer step only {step_speedup:.2f}x"
