"""Corpus-build throughput — cold vs. warm vs. parallel (north star).

Every paper table rebuilds corpora; ``bench_table5_opt_levels.py`` alone
rebuilds the same one per (opt level, compiler) condition, and before the
artifact store each bench *process* paid the full compilation chain again.
This bench measures the staged pipeline + content-addressed store:

* **cold** — every stage runs, results persisted to a fresh store;
* **warm** — the identical build served entirely from the store;
* **parallel** — cold build fanned over a multiprocessing pool.

Asserted shape: warm ≥ 5× faster than cold, and serial / warm / parallel
builders produce byte-identical sample graphs (fingerprint equality),
since they share one pipeline implementation.  Per-stage wall clock is
printed from the pipeline's timer.
"""

import time

from repro.config import DataConfig
from repro.data.corpus import CorpusBuilder
from repro.index import graph_fingerprint
from repro.utils.tables import Table

from benchmarks.common import BENCH_SEED, run_once

TASKS = 12
VARIANTS = 2
LANGS = ["cpp", "java"]


def _cfg(tmp_path, name):
    return DataConfig(
        num_tasks=TASKS,
        variants=VARIANTS,
        seed=BENCH_SEED,
        artifact_dir=str(tmp_path / name),
    )


def _fingerprints(samples):
    return [
        (s.identifier, graph_fingerprint(s.source_graph), graph_fingerprint(s.decompiled_graph))
        for s in samples
    ]


def test_corpus_build_cold_warm_parallel(benchmark, tmp_path):
    # --- cold: every stage runs, store is empty -------------------------
    cold_builder = CorpusBuilder(_cfg(tmp_path, "store"))
    t0 = time.perf_counter()
    cold = run_once(benchmark, lambda: cold_builder.build(LANGS))
    t_cold = time.perf_counter() - t0

    # --- warm: same coordinates, fresh process-equivalent builder -------
    warm_builder = CorpusBuilder(_cfg(tmp_path, "store"))
    t0 = time.perf_counter()
    warm = warm_builder.build(LANGS)
    t_warm = time.perf_counter() - t0

    # --- parallel: cold build through the worker pool -------------------
    par_builder = CorpusBuilder(_cfg(tmp_path, "store-par"))
    t0 = time.perf_counter()
    par = par_builder.build_parallel(LANGS, workers=2)
    t_par = time.perf_counter() - t0

    # --- serial baseline without any store ------------------------------
    base = CorpusBuilder(
        DataConfig(num_tasks=TASKS, variants=VARIANTS, seed=BENCH_SEED)
    ).build(LANGS)

    table = Table(
        "Corpus build: staged pipeline + artifact store",
        ["Mode", "Wall clock (s)", "Samples", "vs cold"],
    )
    table.add_row("cold (store miss)", f"{t_cold:.3f}", len(cold), "1.0x")
    table.add_row("warm (store hit)", f"{t_warm:.3f}", len(warm), f"{t_cold / t_warm:.1f}x")
    table.add_row("parallel x2 (cold)", f"{t_par:.3f}", len(par), f"{t_cold / t_par:.1f}x")
    print()
    print(table.render())
    print("\ncold per-stage wall clock:")
    print(cold_builder.timer.report())
    print("\nwarm per-stage wall clock:")
    print(warm_builder.timer.report())

    # One pipeline implementation → byte-identical graphs in every mode.
    want = _fingerprints(cold)
    assert _fingerprints(warm) == want
    assert _fingerprints(par) == want
    assert _fingerprints(base) == want
    assert [s.binary_bytes for s in warm] == [s.binary_bytes for s in cold]
    assert [s.binary_bytes for s in par] == [s.binary_bytes for s in cold]
    assert warm_builder.store.hits == len(warm)

    # The north-star claim: warm corpus builds are effectively free.
    assert t_cold / t_warm >= 5.0, f"warm speedup only {t_cold / t_warm:.1f}x"
