"""Robustness workload — transform determinism, clean parity, warm reuse.

Not a paper table: this bench gates the transformation/augmentation
subsystem (``repro.transform`` + ``repro.eval.robustness``, PR 5).  It
sweeps every registered transform (plus a stacked chain) across
intensities against a clean candidate index and asserts the engineering
contracts the workload stands on:

* **determinism** — every registered transform, applied twice with the
  same spec through fresh pipelines, produces bit-identical binary
  artifacts (the artifact store's content-addressing depends on it), and
  at full intensity actually changes the bytes;
* **clean parity** — the harness's untransformed baseline row equals a
  direct :func:`~repro.eval.retrieval.evaluate_retrieval` sweep over the
  same corpus: the new workload reproduces the seed benches' clean
  numbers instead of quietly shifting them;
* **warm reuse** — a second harness pointed at the same artifact store
  and sharded index directory re-runs the whole sweep ≥ 3× faster (the
  clean candidate embeddings load from the sharded index and every
  transformed compilation loads from the store; only transformed query
  graphs are re-embedded), with a bit-identical robustness matrix.

The matrix and wall-clocks merge into
``benchmarks/perf/BENCH_robustness.json``.  Set ``REPRO_BENCH_SMOKE=1``
(scripts/verify.sh does) for a reduced sweep with the same gates.
"""

import os
import time
from pathlib import Path

from repro.artifacts import ArtifactStore
from repro.config import DataConfig
from repro.eval.retrieval import evaluate_retrieval
from repro.eval.robustness import CLEAN, RobustnessCell, RobustnessHarness
from repro.pipeline import CompilationPipeline
from repro.transform import TRANSFORM_REGISTRY, TransformSpec, chain_id
from repro.utils.tables import Table

from benchmarks.common import (
    BENCH_SEED,
    bench_data_cfg,
    crosslang_dataset,
    run_once,
    trained_gbm,
    write_perf_record,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

# Corpus economics for the warm-reuse gate: candidates outnumber queries
# (MAX_QUERIES caps the query side), so the cold run's candidate encoding
# + corpus compilation dominate and the warm run (store hits + index open
# + query embeds only) clears 3x.
CORPUS_TASKS = 12 if SMOKE else 18
TRAIN_TASKS = 6 if SMOKE else 8
MAX_QUERIES = 8 if SMOKE else 12
VARIANTS = 2
INTENSITIES = (1.0,) if SMOKE else (0.5, 1.0)
CHAINS = tuple(sorted(TRANSFORM_REGISTRY)) + ("deadcode+regrename",)
# The compact serving-scale model: the bench measures the harness's
# caching, not model quality.
ROBUST_MODEL = dict(epochs=4, hidden_dim=16, embed_dim=16, num_layers=1)

# A call-bearing program with branches: every transform has eligible
# sites (inline needs a surviving call, hence O1 not Oz).
_DET_SOURCE = """\
int helper(int a, int b) { int t = a * 2 + b; return t - 3; }
int main() {
    int s = 0;
    for (int i = 1; i <= 8; i++) {
        if (i % 2 == 0) { s += helper(i, s); } else { s = s - i; }
    }
    printf("%d\\n", s);
    return 0;
}
"""


def _compile_bytes(spec_chain) -> bytes:
    """One fresh-pipeline compile of the determinism probe program."""
    result = CompilationPipeline(transforms=spec_chain).compile(
        _DET_SOURCE, "c", name="det-probe", opt_level="O1"
    )
    return result.binary_bytes


def _determinism_sweep() -> dict:
    """Compile every registered transform twice; report equality bits."""
    clean = _compile_bytes(())
    rows = {}
    for name in sorted(TRANSFORM_REGISTRY):
        chain = (TransformSpec(name, 1.0, seed=BENCH_SEED),)
        first, second = _compile_bytes(chain), _compile_bytes(chain)
        rows[name] = {
            "deterministic": first == second,
            "changes_bytes": first != clean,
        }
    stacked = tuple(
        TransformSpec(n, 1.0, seed=BENCH_SEED)
        for n in ("deadcode", "instsub", "regrename", "pad")
    )
    first, second = _compile_bytes(stacked), _compile_bytes(stacked)
    rows[chain_id(stacked)] = {
        "deterministic": first == second,
        "changes_bytes": first != clean,
    }
    return rows


def _run():
    dataset, _ = crosslang_dataset(("c",), ("java",), num_tasks=TRAIN_TASKS, variants=2)
    trainer = trained_gbm("robustness", dataset, **ROBUST_MODEL)
    cfg = DataConfig(
        num_tasks=CORPUS_TASKS, variants=VARIANTS, seed=BENCH_SEED,
        max_pairs_per_task=4,
    )
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-robust-") as tmp:
        store_dir = Path(tmp) / "artifacts"
        index_dir = Path(tmp) / "clean-index"

        def harness() -> RobustnessHarness:
            return RobustnessHarness(
                trainer,
                cfg,
                source_languages=["java"],
                query_language="c",
                store=ArtifactStore(store_dir),
                index_root=index_dir,
                transform_seed=BENCH_SEED,
                max_queries=MAX_QUERIES,
            )

        t0 = time.perf_counter()
        cold_harness = harness()
        cold_report = cold_harness.evaluate(CHAINS, INTENSITIES)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_harness = harness()
        warm_report = warm_harness.evaluate(CHAINS, INTENSITIES)
        warm_s = time.perf_counter() - t0

        # Clean parity: the harness baseline vs a direct retrieval sweep
        # over the same (queries, candidates) with the same trainer —
        # wrapped in a RobustnessCell so both sides share one dict shape.
        direct = RobustnessCell(
            CLEAN,
            0.0,
            evaluate_retrieval(
                trainer, cold_harness.clean_queries(), cold_harness.candidates
            ),
        )

    return {
        "determinism": _determinism_sweep(),
        "matrix": cold_report.matrix(),
        "matrix_warm": warm_report.matrix(),
        "clean_row": cold_report.clean.to_dict(),
        "direct_clean": direct.to_dict(),
        "num_candidates": cold_report.num_candidates,
        "num_queries": cold_report.num_queries,
        "cold_s": cold_s,
        "warm_s": warm_s,
    }


def test_robustness_workload(benchmark):
    r = run_once(benchmark, _run)
    speedup = r["cold_s"] / r["warm_s"] if r["warm_s"] else float("inf")

    table = Table(
        f"Robustness sweep: {r['num_queries']} queries x "
        f"{r['num_candidates']} candidates, {len(CHAINS)} chains x "
        f"{len(INTENSITIES)} intensities",
        ["Run", "Wall s", "Speedup"],
    )
    table.add_row("cold (compile + encode corpus)", round(r["cold_s"], 2), 1.0)
    table.add_row("warm (store + sharded index)", round(r["warm_s"], 2), round(speedup, 1))
    print()
    print(table.render())
    mrr_table = Table("Robustness matrix (MRR)", ["Chain"] + [f"i={i:g}" for i in INTENSITIES])
    for chain, row in r["matrix"].items():
        if chain == "clean":
            continue
        mrr_table.add_row(chain, *(round(row[f"{i:g}"]["mrr"], 3) for i in INTENSITIES))
    print(mrr_table.render())

    # Gate 1: every registered transform is deterministic under a fixed
    # seed and perturbs the probe binary at full intensity.
    for name, bits in r["determinism"].items():
        assert bits["deterministic"], f"{name} is not bit-deterministic"
        assert bits["changes_bytes"], f"{name} did not change the binary"

    # Gate 2: the clean baseline reproduces the direct retrieval sweep.
    assert r["clean_row"] == r["direct_clean"], (
        f"clean robustness row {r['clean_row']} != direct retrieval "
        f"{r['direct_clean']}"
    )

    # Gate 3: warm re-runs reuse cached clean embeddings and compiled
    # variants — ≥3x faster, with a bit-identical matrix.
    assert r["matrix_warm"] == r["matrix"], "warm matrix differs from cold"
    assert r["warm_s"] * 3 <= r["cold_s"], (
        f"warm robustness run only {speedup:.1f}x faster than cold"
    )

    write_perf_record(
        "robustness",
        {
            "cold_s": r["cold_s"],
            "warm_s": r["warm_s"],
            "warm_speedup": speedup,
            "num_candidates": r["num_candidates"],
            "num_queries": r["num_queries"],
            "determinism": r["determinism"],
            "matrix": r["matrix"],
            "smoke": SMOKE,
        },
    )
