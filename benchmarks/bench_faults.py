"""Fault tolerance — every injected fault ends clean, never wrong, never hung.

Not a paper table: this bench backs the reliability layer (``repro.faults``
+ checksums + ``repro fsck`` + degraded serving, PR 9).  The claim under
gate is the contract the subsystem exists for:

* **fault sweep** — each injectable fault kind driven through an artifact
  store put/get cycle ends in exactly one of: a clean descriptive error
  (``injected:`` message, no partial commit), an *observable* miss
  (``read_errors`` bumped, never silently wrong bytes), or a bit-identical
  correct result.  Never a wrong answer, never a hang.
* **kill-mid-build recovery** — a corpus build hard-killed mid-commit
  (``crash`` at the atomic-replace chokepoint) leaves no corrupt committed
  entry; re-running the build to completion yields a store byte-identical
  to an uninterrupted reference build.
* **fsck round trip** — scan / repair wall-clocks on a corrupted store,
  with the repaired entry restored bit-identical via re-derivation.
* **degraded serving** — with one shard corrupted on disk the socket
  service quarantines it and keeps answering every request, flagged
  ``degraded`` with a coverage fraction.
* **deadlines** — a worker hung by fault injection is detected, killed,
  and answered with a retryable ``deadline exceeded`` error; the fault
  seed makes the hit pattern deterministic, so the exact per-request
  outcome sequence is asserted.

Timings land in ``benchmarks/perf/BENCH_faults.json``.  Set
``REPRO_BENCH_SMOKE=1`` for the reduced-size CI run (same gates).
"""

import base64
import hashlib
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import faults
from repro.artifacts import ArtifactKey, ArtifactStore, source_text_id
from repro.data.corpus import CorpusBuilder
from repro.faults import CRASH_EXIT_CODE
from repro.fsck import fsck
from repro.index import EmbeddingIndex, ShardedEmbeddingIndex
from repro.pipeline import CompilationPipeline
from repro.serve import ServerConfig, create_server
from repro.utils.tables import Table

from benchmarks.common import (
    BENCH_SEED,
    bench_data_cfg,
    crosslang_dataset,
    run_once,
    trained_gbm,
    write_perf_record,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
REPO_ROOT = Path(__file__).resolve().parent.parent
TOP_K = 5
CORPUS_TASKS = 8 if SMOKE else 12
CORPUS_SIZE = 12 if SMOKE else 18
SHARD_SIZE = 5
SERVE_QUERIES = 4 if SMOKE else 8
# Same serving-scale model (and model-store key) as the other serve benches.
SERVE_MODEL = dict(epochs=4, hidden_dim=16, embed_dim=16, num_layers=1)
# Crash-recovery build: 3 tasks x 2 variants = 6 store commits.  With
# ``crash@0.5~0`` the deterministic draw stream at the replace chokepoint
# is [False, False, True, ...]: the build dies on its third commit — a
# genuinely partial store, not an empty or complete one.
CRASH_TASKS = 3
CRASH_SPEC = "crash:artifacts.put.replace@0.5~0"
# Deadline section: ``hang@0.4~2`` draws [ok, hang, ok, hang] over four
# single-request batches (each worker respawn restarts its draw counter),
# so the outcome sequence below is exact, not probabilistic.
HANG_SPEC = "hang:worker.batch@0.4~2"
# Roomy enough that a respawned worker's model/index load (the request
# after each deadline kill) fits inside the next request's deadline even
# on a loaded box; the hang fault stalls for ~600s, so the deadline
# still fires unambiguously.
DEADLINE_S = 5.0
TIMEOUT = 120.0

SOURCE = (
    "int gcd(int a, int b) { while (b) { int t = b; b = a % b; a = t; } return a; }"
)

# Expected terminal state per fault kind for one put/get cycle with
# verify-on-read enabled.  Three clean outcomes exist; "wrong bytes" and
# "hang" are not among them.
SWEEP_EXPECTED = {
    "eio-write": "clean-error",
    "enospc": "clean-error",
    "torn-replace": "clean-error",
    "truncated-write": "observable-miss",
    "eio-read": "observable-miss",
    "slow-io": "identical",
}


def _key():
    return ArtifactKey(
        task="gcd",
        variant=1,
        language="c",
        opt_level="O1",
        compiler="llvm-mock",
        source_id=source_text_id(SOURCE),
        transforms="",
    )


# ------------------------------------------------------------ fault sweep
def _sweep_one(root, compiled, kind):
    """One put/get cycle under ``kind``; returns the terminal outcome."""
    store = ArtifactStore(root / kind, verify_reads=True)
    key = _key()
    try:
        with faults.active(kind):
            store.put(key, compiled)
            got = store.get(key)
    except OSError as exc:
        message = str(exc)
        assert "injected" in message, f"{kind}: undescriptive error {message!r}"
        assert len(store) == 0, f"{kind}: a failed put left a committed entry"
        return "clean-error"
    if got is None:
        assert store.read_errors >= 1, f"{kind}: miss without an error counter"
        after = store.get(key)  # fault cleared: still never wrong bytes
        assert after is None or after.binary_bytes == compiled.binary_bytes
        return "observable-miss"
    assert got.binary_bytes == compiled.binary_bytes, f"{kind}: wrong bytes"
    return "identical"


# ------------------------------------------------- crash-recovery build
def _corpus_build(store_dir, fault_spec=None):
    """Run ``repro corpus build`` in a subprocess; returns (proc, seconds)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    if fault_spec:
        env["REPRO_FAULTS"] = fault_spec
    cmd = [
        sys.executable, "-m", "repro", "corpus", "build",
        "--languages", "c",
        "--num-tasks", str(CRASH_TASKS),
        "--variants", "2",
        "--seed", str(BENCH_SEED),
        "--store", str(store_dir),
    ]
    t0 = time.perf_counter()
    proc = subprocess.run(
        cmd, env=env, cwd=REPO_ROOT, capture_output=True, text=True, timeout=TIMEOUT
    )
    return proc, time.perf_counter() - t0


def _payload_shas(root):
    """sha256 of every committed store payload, keyed by relative path."""
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(Path(root).glob("*/*.npz"))
    }


# -------------------------------------------------------- socket client
class _Client:
    """Minimal closed-loop JSON-lines client."""

    def __init__(self, address):
        self.sock = socket.create_connection(tuple(address), timeout=TIMEOUT)
        self.sock.settimeout(TIMEOUT)
        self._buf = b""

    def ask(self, request: dict) -> dict:
        self.sock.sendall((json.dumps(request) + "\n").encode())
        while b"\n" not in self._buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._buf += chunk
        line, self._buf = self._buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def _request(sample, rid):
    return {
        "id": rid,
        "binary_b64": base64.b64encode(sample.binary_bytes).decode(),
        "k": TOP_K,
    }


def _serve_config(checkpoint, index_path, **overrides):
    kw = dict(
        checkpoint=str(checkpoint),
        index_path=str(index_path),
        port=0,
        workers=1,
        max_batch=2,
        max_delay_ms=2.0,
        default_k=TOP_K,
    )
    kw.update(overrides)
    return ServerConfig(**kw)


def _run():
    r = {}
    compiled = CompilationPipeline().compile(SOURCE, "c", name="gcd/v1.c")

    with tempfile.TemporaryDirectory(prefix="repro-bench-faults-") as tmp:
        tmp = Path(tmp)

        # ---- 1. fault sweep: one put/get cycle per kind ----------------
        t0 = time.perf_counter()
        r["sweep"] = {
            kind: _sweep_one(tmp / "sweep", compiled, kind) for kind in SWEEP_EXPECTED
        }
        r["sweep_s"] = time.perf_counter() - t0

        # ---- 2. kill-mid-build crash recovery --------------------------
        ref_proc, r["reference_build_s"] = _corpus_build(tmp / "ref-store")
        assert ref_proc.returncode == 0, ref_proc.stderr
        ref_shas = _payload_shas(tmp / "ref-store")
        # Content addressing may dedup identical variants; just require
        # enough distinct entries that a third-commit crash is partial.
        assert len(ref_shas) >= 4

        crash_proc, r["crash_run_s"] = _corpus_build(tmp / "crash-store", CRASH_SPEC)
        r["crash_exit_code"] = crash_proc.returncode
        partial = _payload_shas(tmp / "crash-store")
        r["entries_surviving_crash"] = len(partial)
        # Nothing half-written got committed: every surviving entry is
        # already byte-identical to the reference, and fsck agrees.
        assert all(ref_shas.get(k) == v for k, v in partial.items())
        post_crash = fsck(tmp / "crash-store")
        assert post_crash["counts"]["corrupt"] == 0, post_crash

        recover_proc, r["recovery_run_s"] = _corpus_build(tmp / "crash-store")
        assert recover_proc.returncode == 0, recover_proc.stderr
        swept = fsck(tmp / "crash-store", quarantine=True)  # clear crash residue
        assert swept["clean"], swept
        r["recovered_identical"] = _payload_shas(tmp / "crash-store") == ref_shas

        # ---- 3. fsck scan / repair round trip --------------------------
        fsck_root = tmp / "fsck-store"
        shutil.copytree(tmp / "ref-store", fsck_root)
        victim = sorted(fsck_root.glob("*/*.npz"))[0]
        original = victim.read_bytes()
        victim.write_bytes(original[: len(original) // 2])

        t0 = time.perf_counter()
        scan = fsck(fsck_root)
        r["fsck_scan_s"] = time.perf_counter() - t0
        assert not scan["clean"] and scan["counts"]["corrupt"] == 1

        t0 = time.perf_counter()
        repair = fsck(fsck_root, repair=True)
        r["fsck_repair_s"] = time.perf_counter() - t0
        assert repair["clean"] and repair["actions"]["repaired"] == 1
        r["repair_identical"] = victim.read_bytes() == original

        # ---- 4 + 5 need a served model over a sharded index ------------
        dataset, _ = crosslang_dataset(("c",), ("java",), num_tasks=12, variants=2)
        trainer = trained_gbm("serve-throughput", dataset, **SERVE_MODEL)
        corpus = CorpusBuilder(
            bench_data_cfg(num_tasks=CORPUS_TASKS, variants=2)
        ).build(["c", "java"])
        binaries = [s for s in corpus if s.language == "c"]
        sources = [s for s in corpus if s.language == "java"][:CORPUS_SIZE]

        checkpoint = tmp / "model.npz"
        trainer.save(checkpoint)
        mono = EmbeddingIndex(trainer)
        mono.add(
            [s.source_graph for s in sources],
            metas=[{"id": s.identifier} for s in sources],
        )
        ShardedEmbeddingIndex.from_index(mono, tmp / "index", SHARD_SIZE)
        shutil.copytree(tmp / "index", tmp / "index-degraded")
        shard = sorted((tmp / "index-degraded").glob("shard-*.npz"))[-1]
        shard.write_bytes(shard.read_bytes()[:64])

        # ---- 4. degraded serving stays available -----------------------
        config = _serve_config(checkpoint, tmp / "index-degraded")
        t0 = time.perf_counter()
        with create_server(config) as server:
            client = _Client(server.address)
            try:
                responses = [
                    client.ask(_request(binaries[i % len(binaries)], f"d{i}"))
                    for i in range(SERVE_QUERIES)
                ]
            finally:
                client.close()
        r["degraded_serve_s"] = time.perf_counter() - t0
        r["degraded_responses"] = responses
        r["degraded_coverage"] = responses[0].get("coverage")

        # ---- 5. hung worker -> deterministic deadline errors -----------
        config = _serve_config(
            checkpoint, tmp / "index", batch_timeout_s=DEADLINE_S
        )
        os.environ["REPRO_FAULTS"] = HANG_SPEC
        try:
            t0 = time.perf_counter()
            with create_server(config) as server:
                client = _Client(server.address)
                try:
                    deadline_resp = [
                        client.ask(_request(binaries[i % len(binaries)], f"h{i}"))
                        for i in range(4)
                    ]
                finally:
                    client.close()
                r["deadline_timeouts"] = server.stats_snapshot()["deadline_timeouts"]
            r["deadline_section_s"] = time.perf_counter() - t0
        finally:
            os.environ.pop("REPRO_FAULTS", None)
        r["deadline_responses"] = deadline_resp

    return r


def test_fault_tolerance(benchmark):
    r = run_once(benchmark, _run)

    table = Table(
        "Fault tolerance: injected faults end clean, never wrong, never hung",
        ["Scenario", "Outcome", "Wall s"],
    )
    for kind, outcome in r["sweep"].items():
        table.add_row(f"sweep {kind}", outcome, "-")
    table.add_row("crash mid-build", f"exit {r['crash_exit_code']}, "
                  f"{r['entries_surviving_crash']} entries intact",
                  round(r["crash_run_s"], 3))
    table.add_row("recovery re-run",
                  "byte-identical" if r["recovered_identical"] else "DIVERGED",
                  round(r["recovery_run_s"], 3))
    table.add_row("fsck scan", "corrupt found", round(r["fsck_scan_s"], 4))
    table.add_row("fsck repair",
                  "bit-identical" if r["repair_identical"] else "DIVERGED",
                  round(r["fsck_repair_s"], 3))
    table.add_row("degraded serve",
                  f"coverage {r['degraded_coverage']}",
                  round(r["degraded_serve_s"], 3))
    table.add_row("hung worker",
                  f"{r['deadline_timeouts']} deadline timeouts",
                  round(r["deadline_section_s"], 3))
    print()
    print(table.render())

    # Sweep: each fault kind lands on its contracted clean outcome.
    assert r["sweep"] == SWEEP_EXPECTED

    # Crash recovery: the kill is the injected hard-exit, the partial store
    # holds only clean entries, and the completed re-run is byte-identical
    # to the uninterrupted reference build.
    assert r["crash_exit_code"] == CRASH_EXIT_CODE
    assert 0 < r["entries_surviving_crash"] < 4
    assert r["recovered_identical"]

    # fsck: the corrupted entry was re-derived bit-identical.
    assert r["repair_identical"]

    # Degraded serving: every request answered, flagged, partial coverage.
    for resp in r["degraded_responses"]:
        assert resp["hits"], resp
        assert resp["degraded"] is True
        assert 0.0 < resp["coverage"] < 1.0

    # Deadlines: the seeded hang pattern is [ok, hang, ok, hang]; hung
    # batches come back as retryable errors, never as wrong answers, and
    # the service keeps serving between them (worker killed + respawned).
    outcomes = [
        "hits" if "hits" in resp else "deadline"
        for resp in r["deadline_responses"]
    ]
    assert outcomes == ["hits", "deadline", "hits", "deadline"], r[
        "deadline_responses"
    ]
    for resp in r["deadline_responses"]:
        if "hits" not in resp:
            assert "deadline exceeded" in resp["error"]
            assert resp["retryable"] is True
    assert r["deadline_timeouts"] == 2

    write_perf_record(
        "faults",
        {
            "smoke": SMOKE,
            "sweep": r["sweep"],
            "sweep_s": r["sweep_s"],
            "crash_exit_code": r["crash_exit_code"],
            "entries_surviving_crash": r["entries_surviving_crash"],
            "crash_run_s": r["crash_run_s"],
            "recovery_run_s": r["recovery_run_s"],
            "reference_build_s": r["reference_build_s"],
            "recovered_identical": r["recovered_identical"],
            "fsck_scan_s": r["fsck_scan_s"],
            "fsck_repair_s": r["fsck_repair_s"],
            "repair_identical": r["repair_identical"],
            "degraded_coverage": r["degraded_coverage"],
            "degraded_serve_s": r["degraded_serve_s"],
            "deadline_timeouts": r["deadline_timeouts"],
            "deadline_section_s": r["deadline_section_s"],
        },
    )
